"""The waiver file: checked-in, justified exceptions to the analyzer.

``lint-baseline.toml`` holds an array of ``[[waiver]]`` tables::

    [[waiver]]
    rule = "D104"
    path = "src/repro/faults/campaign.py"
    scope = "run_campaign"
    justification = "duration_seconds is documented timing provenance"

A waiver suppresses every finding with the same rule id, repository
path and (when given) enclosing scope.  The file is itself linted:
waivers without a justification are findings (W002), and waivers that
no longer match anything are findings too (W001) — a stale baseline
must shrink, never silently accumulate.
"""

from __future__ import annotations

import dataclasses
import tomllib
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .model import Finding, RULES


class BaselineError(ValueError):
    """The waiver file is malformed (not a lint finding: a hard error)."""


@dataclasses.dataclass(frozen=True, slots=True)
class Waiver:
    """One intentional, justified exception."""

    rule: str
    path: str
    justification: str
    scope: Optional[str] = None
    index: int = 0

    def matches(self, finding: Finding) -> bool:
        return (finding.rule == self.rule
                and finding.path == self.path
                and (self.scope is None or finding.scope == self.scope))

    def describe(self) -> str:
        where = self.path if self.scope is None \
            else f"{self.path}::{self.scope}"
        return f"{self.rule} at {where}"


def load_baseline(path: Path) -> List[Waiver]:
    try:
        with open(path, "rb") as handle:
            data = tomllib.load(handle)
    except tomllib.TOMLDecodeError as error:
        raise BaselineError(f"{path}: invalid TOML: {error}") from error
    raw = data.get("waiver", [])
    if not isinstance(raw, list):
        raise BaselineError(f"{path}: 'waiver' must be an array of "
                            "tables ([[waiver]])")
    waivers: List[Waiver] = []
    for index, entry in enumerate(raw, start=1):
        if not isinstance(entry, dict):
            raise BaselineError(f"{path}: waiver #{index} is not a table")
        unknown = sorted(set(entry)
                         - {"rule", "path", "scope", "justification"})
        if unknown:
            raise BaselineError(
                f"{path}: waiver #{index} has unknown keys: "
                f"{', '.join(unknown)}")
        for key in ("rule", "path"):
            if not isinstance(entry.get(key), str) or not entry[key]:
                raise BaselineError(
                    f"{path}: waiver #{index} needs a non-empty "
                    f"{key!r} string")
        if entry["rule"] not in RULES:
            raise BaselineError(
                f"{path}: waiver #{index} names unknown rule "
                f"{entry['rule']!r}")
        waivers.append(Waiver(
            rule=entry["rule"], path=entry["path"],
            scope=entry.get("scope"),
            justification=str(entry.get("justification", "")),
            index=index))
    return waivers


def apply_baseline(findings: Sequence[Finding],
                   waivers: Sequence[Waiver],
                   baseline_path: str,
                   ) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into (unwaived, waived) and lint the waivers.

    Waiver-hygiene findings (W001 unused, W002 unjustified) are
    appended to the unwaived list: the baseline is part of the checked
    surface.
    """
    used: Dict[int, int] = {}
    unwaived: List[Finding] = []
    waived: List[Finding] = []
    for finding in findings:
        match = next((waiver for waiver in waivers
                      if waiver.matches(finding)), None)
        if match is None:
            unwaived.append(finding)
        else:
            used[match.index] = used.get(match.index, 0) + 1
            waived.append(finding)
    for waiver in waivers:
        if not waiver.justification.strip():
            unwaived.append(Finding(
                rule="W002", path=baseline_path, line=0, col=0,
                scope=f"waiver#{waiver.index}",
                message=f"waiver for {waiver.describe()} has no "
                        "justification",
                hint=RULES["W002"].hint))
        if waiver.index not in used:
            unwaived.append(Finding(
                rule="W001", path=baseline_path, line=0, col=0,
                scope=f"waiver#{waiver.index}",
                message=f"waiver for {waiver.describe()} matches no "
                        "finding any more",
                hint=RULES["W001"].hint))
    return unwaived, waived
