"""LUT technology optimization: collapse LUT chains into fuller LUT4s.

Gate-level construction (:mod:`repro.techmap.gates`) emits one LUT per gate,
which wastes LUT inputs (e.g. an inverter feeding an AND2 is really a single
2-input function).  :func:`merge_luts` repeatedly absorbs single-fanout LUT
drivers into their sink LUT whenever the combined support still fits in a
LUT4, recomputing the INIT truth table.  This mirrors what a commercial
mapper does and materially changes the area numbers reported in Table 2.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..cells.evaluate import lut_init_of
from ..cells.library import LUT_CELLS, lut_cell_for_inputs, lut_input_count
from ..netlist.ir import Definition, Instance, InstancePin, Net, NetlistError


@dataclasses.dataclass
class MapperReport:
    """Summary of a :func:`merge_luts` run."""

    luts_before: int = 0
    luts_after: int = 0
    merges: int = 0
    passes: int = 0

    @property
    def luts_removed(self) -> int:
        return self.luts_before - self.luts_after


def _is_lut(instance: Instance) -> bool:
    return instance.reference.name in LUT_CELLS


def _lut_inputs(instance: Instance) -> List[Optional[Net]]:
    """Nets on I0..Ik of a LUT instance."""
    count = lut_input_count(instance.reference.name)
    return [instance.net_of(f"I{i}") for i in range(count)]


def _lut_output_net(instance: Instance) -> Optional[Net]:
    return instance.net_of("O")


def _single_lut_fanout(net: Net) -> Optional[Tuple[Instance, int]]:
    """If *net* feeds exactly one LUT input pin and nothing else, return it."""
    sinks = net.sinks()
    if len(sinks) != 1:
        return None
    sink = sinks[0]
    if not isinstance(sink, InstancePin):
        return None
    if not _is_lut(sink.instance):
        return None
    if not sink.port_name.startswith("I"):
        return None
    return sink.instance, int(sink.port_name[1:])


def _compose_init(sink: Instance, sink_pin_index: int,
                  driver: Instance) -> Optional[Tuple[int, List[Net]]]:
    """Compute the merged INIT and input net list for absorbing *driver*.

    Returns ``None`` if the merged support would exceed four inputs.
    """
    sink_inputs = _lut_inputs(sink)
    driver_inputs = _lut_inputs(driver)
    if any(n is None for n in driver_inputs):
        return None

    # Build the merged support: sink inputs except the absorbed pin, then any
    # new driver inputs, de-duplicated by net identity.
    merged: List[Net] = []
    for index, net in enumerate(sink_inputs):
        if index == sink_pin_index:
            continue
        if net is None:
            return None
        if net not in merged:
            merged.append(net)
    for net in driver_inputs:
        if net not in merged:
            merged.append(net)
    if len(merged) > 4:
        return None

    sink_init = lut_init_of(sink)
    driver_init = lut_init_of(driver)
    sink_width = lut_input_count(sink.reference.name)
    driver_width = lut_input_count(driver.reference.name)

    new_init = 0
    for address in range(1 << len(merged)):
        assignment = {id(net): (address >> bit) & 1
                      for bit, net in enumerate(merged)}
        # Evaluate the driver LUT under this assignment.
        driver_address = 0
        for position, net in enumerate(driver_inputs):
            driver_address |= assignment[id(net)] << position
        driver_value = (driver_init >> driver_address) & 1
        # Evaluate the sink LUT with the absorbed pin replaced.
        sink_address = 0
        for position, net in enumerate(sink_inputs):
            if position == sink_pin_index:
                bit_value = driver_value
            else:
                bit_value = assignment[id(net)]
            sink_address |= bit_value << position
        if (sink_init >> sink_address) & 1:
            new_init |= 1 << address
    return new_init, merged


def merge_luts(definition: Definition, max_passes: int = 8) -> MapperReport:
    """Absorb single-fanout LUT drivers into their sink LUTs in place."""
    report = MapperReport()
    report.luts_before = sum(1 for i in definition.instances.values()
                             if _is_lut(i))
    cell_library = None
    for instance in definition.instances.values():
        if _is_lut(instance):
            cell_library = instance.reference.library
            break
    if cell_library is None:
        report.luts_after = report.luts_before
        return report

    changed = True
    while changed and report.passes < max_passes:
        changed = False
        report.passes += 1
        for sink in list(definition.instances.values()):
            if sink.name not in definition.instances:
                continue  # removed earlier in this pass
            if not _is_lut(sink):
                continue
            sink_inputs = _lut_inputs(sink)
            for pin_index, input_net in enumerate(sink_inputs):
                if input_net is None:
                    continue
                drivers = input_net.drivers()
                if len(drivers) != 1:
                    continue
                driver_pin = drivers[0]
                if not isinstance(driver_pin, InstancePin):
                    continue
                driver = driver_pin.instance
                if driver is sink or not _is_lut(driver):
                    continue
                if "voter" in driver.properties or "voter" in sink.properties:
                    # Never absorb TMR voters: the voter LUT must remain an
                    # identifiable, separately-placed barrier.
                    continue
                if driver.properties.get("domain") != \
                        sink.properties.get("domain"):
                    continue  # never merge logic across TMR domains
                if _single_lut_fanout(input_net) is None:
                    continue
                if any(pin.net is input_net for pin in
                       definition.top_pins() if pin.net is not None):
                    continue
                composition = _compose_init(sink, pin_index, driver)
                if composition is None:
                    continue
                new_init, merged_inputs = composition
                _rebuild_lut(definition, cell_library, sink, new_init,
                             merged_inputs)
                definition.remove_instance(driver)
                if not input_net.pins:
                    definition.remove_net(input_net)
                report.merges += 1
                changed = True
                break  # sink's pins changed; revisit on next outer iteration

    report.luts_after = sum(1 for i in definition.instances.values()
                            if _is_lut(i))
    return report


def _rebuild_lut(definition: Definition, cell_library, instance: Instance,
                 init: int, inputs: List[Net]) -> None:
    """Re-type *instance* to the right LUT size and rewire its inputs."""
    output_net = _lut_output_net(instance)
    if output_net is None:
        raise NetlistError(f"LUT {instance.name!r} has no output net")
    properties = dict(instance.properties)
    properties["INIT"] = init
    name = instance.name
    definition.remove_instance(instance)
    reference = lut_cell_for_inputs(cell_library, max(1, len(inputs)))
    rebuilt = definition.add_instance(reference, name)
    rebuilt.properties = properties
    for position, net in enumerate(inputs):
        rebuilt.connect(f"I{position}", net, 0)
    rebuilt.connect("O", output_net, 0)


def remove_buffer_luts(definition: Definition) -> int:
    """Remove LUT1 buffers (INIT = O=I0) by merging their nets.

    Buffers protecting top-level ports are kept.  Returns the number of
    buffers removed.
    """
    removed = 0
    for instance in list(definition.instances.values()):
        if instance.reference.name != "LUT1":
            continue
        if lut_init_of(instance) != 2:  # not a plain buffer
            continue
        in_net = instance.net_of("I0")
        out_net = instance.net_of("O")
        if in_net is None or out_net is None:
            continue
        if out_net.top_pins() and in_net.top_pins():
            continue  # keep port-to-port buffers explicit
        definition.remove_instance(instance)
        for pin in list(out_net.pins):
            in_net.connect(pin)
        if not out_net.pins:
            definition.remove_net(out_net)
        removed += 1
    return removed


def lut_histogram(definition: Definition) -> Dict[str, int]:
    """Count primitive instances by cell type (recursing into hierarchy)."""
    return definition.count_primitives()
