"""Benchmark: campaign engine throughput (faults/sec per backend).

Measures the Table 3 FIR campaign on the standard and medium-partition TMR
filter versions through every execution backend, against a baseline that
replays the seed's strictly serial one-bit-at-a-time loop (fresh compiled
design, fresh fault list, fresh golden trace, one simulator per fault, no
caching).  The numbers land in ``BENCH_campaign.json`` at the repository
root so the performance trajectory of the campaign hot path can be tracked
across PRs.

For the bit-parallel ``vector`` backend the report also records shard
sizes and lane utilization (how full the big-int lanes actually were), so
speedup figures stay interpretable across machines and fault mixes: a
campaign that only fills a third of its lanes has that much headroom
before the kernel itself is the limit.

The numpy-compiled backend is additionally measured at a *saturating*
injection count (default 10^6; ``REPRO_BENCH_NUMPY_FAULTS``): its
per-unique-fault sweeps amortize over duplicate injections, so its
throughput keeps climbing well past the smoke sample, which is the
regime million-injection campaigns run in.  That row reports a
*throughput* speedup — numpy faults/sec at the saturating count over the
seed loop's faults/sec at the smoke sample (per-fault seed cost is flat,
so the ratio is fair), plus the lane-utilization figures the cross-cone
packer is gated on.

Knobs: ``REPRO_BENCH_SCALE`` / ``REPRO_BENCH_FAULTS`` (see conftest).
"""

import dataclasses
import json
import os
import time

from repro.faults import (CampaignConfig, FaultListManager, NumpyBackend,
                          ProcessPoolBackend, VectorBackend, clear_cache,
                          default_stimulus, run_campaign)
from repro.experiments import campaign_config_for
from repro.sim import CompiledDesign, have_numpy

BENCH_FAULTS = int(os.environ.get("REPRO_BENCH_FAULTS", "0")) or None

#: Required best-backend speedup over the seed serial loop.  Locally the
#: engine sustains 2.4-3.8x; shared CI runners are noisy, so their
#: workflow relaxes the bar via this knob (the JSON report still records
#: the measured numbers either way).
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "2.0"))

#: Required speedup of the bit-parallel vector backend over the seed
#: serial loop (locally it sustains 20x+; relaxed on shared CI runners).
VECTOR_MIN_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_VECTOR_MIN_SPEEDUP", "5.0"))

#: Saturating injection count for the numpy backend's throughput row.
NUMPY_SATURATED_FAULTS = int(
    os.environ.get("REPRO_BENCH_NUMPY_FAULTS", "1000000"))

#: Required throughput speedup of the numpy backend at the saturating
#: count, on the best design (relaxed on shared CI runners).
#: Recalibrated from 60 when the fault-list/resource tables moved onto
#: the shared per-layout cache: the seed serial loop — the denominator
#: of every normalized speedup here — builds its fault list ~2x faster
#: now (the enumeration tables are built once per device instead of
#: once per FaultListManager), so the ratio shrank from ~100-130x to
#: ~60-66x with the numpy kernel's absolute throughput unchanged.
NUMPY_MIN_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_NUMPY_MIN_SPEEDUP", "50.0"))

#: Mean-lane-utilization floor for the cross-cone packer.
NUMPY_UTILIZATION_FLOOR = float(
    os.environ.get("REPRO_BENCH_NUMPY_UTILIZATION_FLOOR", "0.6"))

#: design versions measured (the unprotected filter plus the paper's
#: optimal partition)
MEASURED_DESIGNS = ("standard", "TMR_p2")

#: written into the session's ``bench_out_dir`` (committed baselines are
#: only overwritten under ``--update-baselines``)
BENCH_NAME = "BENCH_campaign.json"


def _seed_serial_loop(implementation, config: CampaignConfig) -> dict:
    """Replay of the pre-engine campaign loop, nothing shared or cached.

    Per fault, exactly what the seed's injection manager did: model the
    effect, flip the bit in a bitstream copy, recompute the fan-out cone
    and build a fresh simulator (full O(gates) program derivation).
    """
    from repro.faults import FaultModeler
    from repro.sim import Simulator, compare_traces

    compiled = CompiledDesign(implementation.design)
    stimulus = default_stimulus(implementation, config)
    fault_list = FaultListManager(implementation).build(
        config.fault_list_mode)
    count = config.num_faults if config.num_faults is not None else \
        max(1, int(len(fault_list) * config.sample_fraction))
    fault_bits = fault_list.sample(count, config.seed)

    modeler = FaultModeler(implementation, compiled)
    golden = Simulator(compiled).run(stimulus, record_nets=True)
    wrong = 0
    for bit in fault_bits:
        effect = modeler.effect_of_bit(bit)
        if not effect.has_effect:
            continue
        faulty_bitstream = implementation.bitstream.copy()
        faulty_bitstream.flip_bit(effect.bit)
        cone = compiled.fault_cone(effect.overlay.seed_nets) \
            if effect.overlay.seed_nets else None
        simulator = Simulator(compiled, effect.overlay)
        if cone is not None:
            trace = simulator.run(stimulus, golden=golden, cone=cone)
        else:
            trace = simulator.run(stimulus)
        comparison = compare_traces(trace, golden,
                                    skip_cycles=config.skip_cycles)
        wrong += comparison.wrong_answer
    return {"injected": len(fault_bits), "wrong": wrong}


def _timed(thunk):
    start = time.perf_counter()
    value = thunk()
    return value, time.perf_counter() - start


def test_campaign_engine_throughput(benchmark, design_suite,
                                    implementations, bench_out_dir):
    config = campaign_config_for(design_suite, num_faults=BENCH_FAULTS)

    clear_cache()
    payload = {
        "scale": design_suite.scale.name,
        "num_faults": config.num_faults,
        "workload_cycles": config.workload_cycles,
        "designs": {},
    }
    for name in MEASURED_DESIGNS:
        implementation = implementations[name]

        # Best of two, like the backends below: the seed loop is the
        # denominator of every normalized speedup (including the CI
        # regression gate), so a one-off stall here would skew them all.
        baseline, baseline_seconds = _timed(
            lambda: _seed_serial_loop(implementation, config))
        second, second_seconds = _timed(
            lambda: _seed_serial_loop(implementation, config))
        assert second == baseline
        baseline_seconds = min(baseline_seconds, second_seconds)
        baseline_fps = baseline["injected"] / baseline_seconds

        measured = {}
        reference = None
        backends = {
            "serial": "serial",
            "batch": "batch",
            "process": ProcessPoolBackend(processes=2),
            "vector": VectorBackend(),
        }
        if have_numpy():
            backends["numpy"] = NumpyBackend()
        for backend_name, backend in backends.items():
            # Two runs per backend: the first may fill the cache, the
            # second is the steady state repeated campaigns run at.
            best_seconds = None
            for _ in range(2):
                result, seconds = _timed(
                    lambda: run_campaign(implementation, config,
                                         backend=backend))
                best_seconds = seconds if best_seconds is None \
                    else min(best_seconds, seconds)
            if reference is None:
                reference = result
            assert result.wrong_answers == baseline["wrong"]
            assert result.wrong_answer_percent == \
                reference.wrong_answer_percent
            measured[backend_name] = {
                "seconds": round(best_seconds, 4),
                "faults_per_second": round(
                    result.injected / best_seconds, 1),
                "speedup_vs_seed_serial": round(
                    baseline_seconds / best_seconds, 2),
            }
            if isinstance(backend, (VectorBackend, NumpyBackend)):
                stats = backend.last_run_stats
                measured[backend_name]["lane_width"] = stats["lane_width"]
                measured[backend_name]["packed_faults"] = \
                    stats["packed_faults"]
                measured[backend_name]["peak_lane_utilization"] = round(
                    stats["peak_lane_utilization"], 4)
                measured[backend_name]["mean_lane_utilization"] = round(
                    stats["mean_lane_utilization"], 4)
                measured[backend_name]["shards"] = [
                    {"lanes": shard["lanes"], "passes": shard["passes"],
                     "coned": shard["coned"],
                     "cone_gates": shard["cone_gates"],
                     "cycles_simulated": shard["cycles_simulated"]}
                    for shard in stats["shards"]]
            if isinstance(backend, NumpyBackend):
                stats = backend.last_run_stats
                measured[backend_name]["unique_faults"] = \
                    stats["unique_faults"]
                measured[backend_name]["demuxed_faults"] = \
                    stats["demuxed_faults"]

        best_backend = max(measured,
                           key=lambda k: measured[k]["faults_per_second"])
        payload["designs"][name] = {
            "seed_serial": {
                "seconds": round(baseline_seconds, 4),
                "faults_per_second": round(baseline_fps, 1),
            },
            "backends": measured,
            "best_backend": best_backend,
            "best_speedup": measured[best_backend][
                "speedup_vs_seed_serial"],
        }

        if have_numpy():
            # Saturating-draw throughput row: one warm run (the smoke
            # runs above already filled the program/golden caches, which
            # is the steady state huge campaigns start from).  The
            # speedup is a faults/sec ratio against the seed loop — its
            # per-fault cost is flat in the draw size, so measuring the
            # seed at the smoke sample and numpy at the saturating draw
            # compares like with like without an hours-long baseline.
            saturated_config = dataclasses.replace(
                config, num_faults=NUMPY_SATURATED_FAULTS)
            saturated_backend = NumpyBackend()
            result, seconds = _timed(
                lambda: run_campaign(implementation, saturated_config,
                                     backend=saturated_backend))
            stats = saturated_backend.last_run_stats
            saturated_fps = result.injected / seconds
            payload["designs"][name]["numpy_saturated"] = {
                "num_faults": NUMPY_SATURATED_FAULTS,
                "seconds": round(seconds, 4),
                "faults_per_second": round(saturated_fps, 1),
                "speedup_vs_seed_serial_throughput": round(
                    saturated_fps / baseline_fps, 2),
                "unique_faults": stats["unique_faults"],
                "demuxed_faults": stats["demuxed_faults"],
                "packed_faults": stats["packed_faults"],
                "peak_lane_utilization": round(
                    stats["peak_lane_utilization"], 4),
                "mean_lane_utilization": round(
                    stats["mean_lane_utilization"], 4),
            }

    if have_numpy():
        payload["numpy_best_saturated_speedup"] = max(
            row["numpy_saturated"]["speedup_vs_seed_serial_throughput"]
            for row in payload["designs"].values())

    (bench_out_dir / BENCH_NAME).write_text(
        json.dumps(payload, indent=2) + "\n")
    benchmark.extra_info["campaign_engine"] = payload
    benchmark.pedantic(lambda: payload, rounds=1, iterations=1)

    # The engine's acceptance bars: at least one backend sustains >= 2x
    # the seed serial loop's faults/sec on the Table 3 campaign, and the
    # bit-parallel vector backend sustains >= 5x on its own (both relaxed
    # on noisy shared runners through the REPRO_BENCH_*MIN_SPEEDUP knobs).
    for name, row in payload["designs"].items():
        assert row["best_speedup"] >= MIN_SPEEDUP, (name, row)
        assert row["backends"]["vector"]["speedup_vs_seed_serial"] >= \
            VECTOR_MIN_SPEEDUP, (name, row)

    # Numpy backend bars: the cross-cone packer keeps the lanes at least
    # 60% full on every measured campaign, and at the saturating draw the
    # best design clears the 60x throughput bar over the seed loop (the
    # same floors ``check_regression.py`` holds the committed report to).
    if have_numpy():
        for name, row in payload["designs"].items():
            assert row["backends"]["numpy"]["mean_lane_utilization"] >= \
                NUMPY_UTILIZATION_FLOOR, (name, row)
            assert row["numpy_saturated"]["mean_lane_utilization"] >= \
                NUMPY_UTILIZATION_FLOOR, (name, row)
        assert payload["numpy_best_saturated_speedup"] >= \
            NUMPY_MIN_SPEEDUP, payload["numpy_best_saturated_speedup"]
