"""Experiment driver for the paper's figures.

The figures in the paper are structural schematics rather than data plots;
their reproducible content is the *structure* of the generated netlists:

* **Figure 1** — the plain TMR scheme: triplicated inputs, three redundant
  logic domains, an output majority voter, and the two example routing upsets
  ("a" within one domain is masked, "b" across domains may defeat the TMR).
* **Figure 2** — the TMR register with voters and refresh.
* **Figure 3** — the partitioned TMR scheme in which upset "b" is blocked by
  a voter barrier.
* **Figure 4** — the three partitioned filter architectures (p1/p2/p3).

``run_figures`` verifies each of those structural properties on generated
netlists and returns a machine-checkable summary; the ASCII renderings give a
quick visual of the partition structure.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Sequence

from ..cells import logic
from ..core import (NUM_DOMAINS, build_voted_register, check_domain_isolation,
                    compute_voter_regions, voter_instances)
from ..faults import CampaignConfig, categories, run_campaign
from ..faults.engine import BackendLike
from ..netlist import Netlist, flatten
from ..pnr import Implementation
from ..sim import CompiledDesign, Simulator
from .cli import experiment_parser
from .designs import DesignSuite, build_design_suite


def figure1_summary(suite: DesignSuite) -> Dict[str, object]:
    """Structural facts of the plain TMR scheme (minimum partition)."""
    result = suite.tmr["TMR_p3"]
    definition = result.definition
    isolation = check_domain_isolation(definition)
    input_ports = [name for name in definition.ports
                   if definition.ports[name].direction.value == "input"]
    triplicated_inputs = all(
        any(name.endswith(f"_tr{domain}") for name in input_ports)
        for domain in range(NUM_DOMAINS))
    return {
        "domains": NUM_DOMAINS,
        "inputs_triplicated": triplicated_inputs,
        "single_voted_output": "DOUT" in definition.ports,
        "domains_isolated_outside_voters": isolation.ok,
        "output_voters": result.voters_by_role.get("output", 0),
    }


def figure2_summary() -> Dict[str, object]:
    """Structural and behavioural facts of the voted register macro."""
    netlist = Netlist("figure2")
    width = 4
    macro = build_voted_register(netlist, width)
    netlist.set_top(macro)
    flat = flatten(netlist, macro)
    compiled = CompiledDesign(flat)

    # Behavioural check: a corrupted flip-flop in one domain is out-voted.
    stimulus = [{f"D_tr{d}": 5 for d in range(3)} for _ in range(3)]
    trace = Simulator(compiled).run(stimulus)
    voted_outputs = {f"Q_tr{d}": trace.outputs[-1][f"Q_tr{d}"]
                     for d in range(3)}
    all_equal = len({tuple(bits) for bits in voted_outputs.values()}) == 1

    return {
        "flip_flops": sum(1 for i in macro.instances.values()
                          if i.reference.name == "FD"),
        "voters": len(voter_instances(macro)),
        "voters_per_bit_per_domain": len(voter_instances(macro)) // width
        // NUM_DOMAINS == 1,
        "clocks_triplicated": all(f"C_tr{d}" in macro.ports
                                  for d in range(3)),
        "domain_outputs_agree": all_equal,
    }


def figure3_summary(suite: DesignSuite) -> Dict[str, object]:
    """The partition property: voter barriers split each domain into regions."""
    summary = {}
    for name in ("TMR_p1", "TMR_p2", "TMR_p3"):
        result = suite.tmr[name]
        regions = compute_voter_regions(result.definition)
        summary[name] = {
            "voters": result.voter_count,
            "regions_per_domain": regions.num_regions,
            "same_region_collision_probability": round(
                regions.same_region_collision_probability(), 4),
        }
    ordered = [summary[n]["regions_per_domain"]
               for n in ("TMR_p3", "TMR_p2", "TMR_p1")]
    summary["regions_increase_with_partitioning"] = \
        ordered[0] <= ordered[1] <= ordered[2]
    return summary


def figure4_summary(suite: DesignSuite) -> Dict[str, object]:
    """The three filter architectures: what gets voted in each version."""
    components = suite.components
    summary: Dict[str, object] = {}
    for name, result in suite.tmr.items():
        voted_blocks = sorted({net.rsplit("[", 1)[0]
                               for net in result.voted_nets})
        summary[name] = {
            "voter_luts": result.voter_count,
            "voted_nets": len(result.voted_nets),
            "voted_blocks": len(voted_blocks),
            "voters_by_role": dict(result.voters_by_role),
        }
    summary["component_inventory"] = {
        "multipliers": len(components.multipliers),
        "adders": len(components.adders),
        "registers": len(components.registers),
    }
    return summary


def figure1_upset_demo(implementation: Implementation,
                       num_faults: int = 400, seed: int = 2005,
                       backend: BackendLike = "vector") -> Dict[str, object]:
    """Measured counterparts of Figure 1's two example routing upsets.

    Figure 1 annotates the plain TMR scheme with upset "a" (a routing fault
    confined to one redundant domain, masked by the voters) and upset "b" (a
    routing fault coupling two domains, able to defeat the TMR).  This demo
    runs one engine-backed campaign on an implemented TMR version and
    returns a concrete example of each, alongside the masked/error counts of
    the routing categories.
    """
    config = CampaignConfig(num_faults=num_faults, seed=seed)
    result = run_campaign(implementation, config, backend=backend)
    routing = [r for r in result.results
               if r.category in categories.ROUTING_CATEGORIES
               and r.has_effect]
    masked = next((r for r in routing if not r.wrong_answer), None)
    defeating = next((r for r in routing if r.wrong_answer), None)

    def describe(record) -> Optional[Dict[str, object]]:
        if record is None:
            return None
        return {
            "bit": record.bit,
            "category": record.category,
            "wrong_answer": record.wrong_answer,
            "detail": record.detail,
        }

    return {
        "design": result.design,
        "backend": result.backend,
        "routing_upsets_with_effect": len(routing),
        "routing_upsets_masked": sum(1 for r in routing
                                     if not r.wrong_answer),
        "routing_upsets_defeating": sum(1 for r in routing
                                        if r.wrong_answer),
        "upset_a_masked_in_domain": describe(masked),
        "upset_b_defeats_tmr": describe(defeating),
    }


def ascii_partition_diagram(suite: DesignSuite, name: str) -> str:
    """A small ASCII rendering of one filter version's voter placement."""
    result = suite.tmr.get(name)
    if result is None:
        return f"{name}: unprotected (no voters)"
    voted_blocks = {net.rsplit("[", 1)[0].split("_voted")[0]
                    for net in result.voted_nets}
    lanes = []
    for tap, mult in enumerate(suite.components.multipliers):
        cell = "[x]"
        if any(mult in block or f"p{tap}" in block for block in voted_blocks):
            cell += "V"
        lanes.append(cell)
    chain = []
    for index, adder in enumerate(suite.components.adders, start=1):
        cell = "(+)"
        if any(f"s{index}" in block or "DOUT" in block
               for block in voted_blocks) or result.voters_by_role.get(
                   "barrier", 0) and adder in " ".join(voted_blocks):
            cell += "V"
        chain.append(cell)
    registers = "".join(
        "[R]" + ("V" if result.config.vote_registers else "")
        for _ in suite.components.registers)
    return (f"{name}: taps {' '.join(lanes)}\n"
            f"{' ' * len(name)}  sum  {' '.join(chain)} -> output voter\n"
            f"{' ' * len(name)}  delay line {registers}")


def run_figures(suite: Optional[DesignSuite] = None, scale: str = "fast"
                ) -> Dict[str, object]:
    if suite is None:
        suite = build_design_suite(scale)
    return {
        "figure1": figure1_summary(suite),
        "figure2": figure2_summary(),
        "figure3": figure3_summary(suite),
        "figure4": figure4_summary(suite),
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = experiment_parser(__doc__, backend_default="vector")
    parser.add_argument("--upsets", action="store_true",
                        help="also implement TMR_p3 and measure Figure 1's "
                             "example routing upsets via a campaign")
    arguments = parser.parse_args(argv)

    suite = build_design_suite(arguments.scale)
    summary = run_figures(suite)
    if arguments.upsets:
        from .designs import implement_design_suite

        implementation = implement_design_suite(
            suite, designs=["TMR_p3"], jobs=arguments.jobs,
            artifact_store=arguments.flow_cache)["TMR_p3"]
        summary["figure1_upsets"] = figure1_upset_demo(
            implementation, backend=arguments.backend)
    if arguments.json:
        print(json.dumps(summary, indent=2, default=str))
    else:
        for figure, data in summary.items():
            print(f"== {figure} ==")
            print(json.dumps(data, indent=2, default=str))
        print("\n== Figure 4 structure ==")
        for name in suite.tmr:
            print(ascii_partition_diagram(suite, name))
            print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
