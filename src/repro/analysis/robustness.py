"""Cross-design robustness analysis combining campaigns and structure.

These helpers post-process campaign results into the quantities the paper
argues about: the improvement factor of the best partition over plain TMR,
the trade-off curve between voter count and measured vulnerability, and the
domain-crossing statistics of each placed-and-routed version.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.analysis import estimate_robustness
from ..core.tmr import TMRResult
from ..faults.campaign import CampaignConfig, CampaignResult, run_campaigns
from ..faults.engine import BackendLike, ProgressCallback
from ..pnr.flow import Implementation


@dataclasses.dataclass
class TradeoffPoint:
    """One design version in the robustness/cost design space."""

    design: str
    voters: int
    slices: int
    fmax_mhz: float
    wrong_answer_percent: float
    analytical_defeat_probability: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "design": self.design,
            "voters": self.voters,
            "slices": self.slices,
            "fmax_mhz": round(self.fmax_mhz, 1),
            "wrong_answer_percent": round(self.wrong_answer_percent, 3),
            "analytical_defeat_probability":
                None if self.analytical_defeat_probability is None
                else round(self.analytical_defeat_probability, 5),
        }


def improvement_factor(results: Mapping[str, CampaignResult],
                       reference: str, improved: str) -> float:
    """How many times fewer wrong answers *improved* has versus *reference*.

    The paper's headline is ``improvement_factor(results, "TMR_p1",
    "TMR_p2") ~= 4``.
    """
    reference_pct = results[reference].wrong_answer_percent
    improved_pct = results[improved].wrong_answer_percent
    if improved_pct == 0.0:
        return float("inf") if reference_pct > 0 else 1.0
    return reference_pct / improved_pct


def best_partition(results: Mapping[str, CampaignResult],
                   candidates: Optional[Sequence[str]] = None) -> str:
    """The design version with the lowest wrong-answer percentage."""
    names = list(candidates) if candidates is not None else list(results)
    return min(names, key=lambda name: results[name].wrong_answer_percent)


def tradeoff_curve(implementations: Mapping[str, Implementation],
                   campaigns: Mapping[str, CampaignResult],
                   tmr_results: Optional[Mapping[str, TMRResult]] = None
                   ) -> List[TradeoffPoint]:
    """Assemble the voters-versus-vulnerability curve across versions."""
    points: List[TradeoffPoint] = []
    for name, implementation in implementations.items():
        campaign = campaigns.get(name)
        if campaign is None:
            continue
        voters = 0
        analytical = None
        if tmr_results is not None and name in tmr_results:
            voters = tmr_results[name].voter_count
            analytical = estimate_robustness(
                tmr_results[name].definition).cross_domain_defeat_probability
        points.append(TradeoffPoint(
            design=name,
            voters=voters,
            slices=implementation.slice_count,
            fmax_mhz=implementation.timing.fmax_mhz,
            wrong_answer_percent=campaign.wrong_answer_percent,
            analytical_defeat_probability=analytical,
        ))
    points.sort(key=lambda point: point.voters)
    return points


def campaign_tradeoff(implementations: Mapping[str, Implementation],
                      config: Optional[CampaignConfig] = None,
                      tmr_results: Optional[Mapping[str, TMRResult]] = None,
                      backend: BackendLike = None,
                      progress: Optional[ProgressCallback] = None
                      ) -> List[TradeoffPoint]:
    """Run the campaigns through the execution engine and build the curve.

    One-call form of :func:`tradeoff_curve` for callers that have the
    implemented versions but no campaign results yet; *backend* selects the
    campaign execution backend (``"serial"``, ``"batch"``, ``"process"``,
    the bit-parallel ``"vector"`` or the numpy-compiled ``"numpy"``),
    and repeated calls reuse the
    golden-trace / fault-effect cache.
    """
    campaigns = run_campaigns(dict(implementations), config,
                              progress=progress, backend=backend)
    return tradeoff_curve(implementations, campaigns,
                          tmr_results=tmr_results)


def routing_effect_share(result: CampaignResult) -> float:
    """Fraction of error-causing upsets attributed to routing effects.

    The paper observes that routing resources dominate the error-causing
    upsets and that LUT upsets never defeat the TMR.
    """
    from ..faults import categories

    routing = sum(result.by_category[c].wrong
                  for c in categories.ROUTING_CATEGORIES
                  if c in result.by_category)
    total = sum(count.wrong for count in result.by_category.values())
    return routing / total if total else 0.0


def domain_crossing_summary(implementation: Implementation
                            ) -> Dict[str, int]:
    """Placed-and-routed cross-domain adjacency statistics.

    Counts routed nets per TMR domain and the number of tiles through which
    nets of more than one domain pass — the physical opportunity for a single
    routing upset to couple two domains.
    """
    from ..fpga.routing import node_tile

    domain_of_net: Dict[str, Optional[int]] = {}
    for net in implementation.design.nets.values():
        value = net.properties.get("domain")
        domain_of_net[net.name] = int(value) if value is not None else None

    tiles_domains: Dict[Tuple[int, int], set] = {}
    nets_per_domain: Dict[Optional[int], int] = {}
    for net_name, tree in implementation.routing.routes.items():
        domain = domain_of_net.get(net_name)
        nets_per_domain[domain] = nets_per_domain.get(domain, 0) + 1
        for node in tree.nodes():
            if node[0] != "wire":
                continue
            tile = node_tile(implementation.device, node)
            tiles_domains.setdefault(tile, set()).add(domain)

    mixed_tiles = sum(1 for domains in tiles_domains.values()
                      if len({d for d in domains if d is not None}) > 1)
    return {
        "routed_nets": len(implementation.routing.routes),
        "tiles_with_routing": len(tiles_domains),
        "tiles_with_multiple_domains": mixed_tiles,
        "nets_domain_0": nets_per_domain.get(0, 0),
        "nets_domain_1": nets_per_domain.get(1, 0),
        "nets_domain_2": nets_per_domain.get(2, 0),
        "nets_shared": nets_per_domain.get(None, 0),
    }
