"""Structural arithmetic generators: adders, negators, constant multipliers.

Every generator returns a self-contained :class:`Definition` so that the FIR
case study is assembled from *components* — exactly the granularity at which
the paper discusses TMR voter insertion ("each combinational logic component,
such as an adder or a multiplier").
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..cells.library import shared_cell_library
from ..netlist.builder import NetlistBuilder
from ..netlist.ir import Definition, Library, Net, Netlist, NetlistError
from ..techmap.gates import GateBuilder


def _builder(netlist: Netlist, name: str, library_name: str = "components",
             cell_library: Optional[Library] = None) -> NetlistBuilder:
    cells = cell_library if cell_library is not None else shared_cell_library()
    return NetlistBuilder.new_module(netlist, name, library_name, cells)


def ripple_carry_adder(netlist: Netlist, width: int,
                       name: Optional[str] = None,
                       with_carry_out: bool = False,
                       cell_library: Optional[Library] = None) -> Definition:
    """Build a *width*-bit ripple-carry adder component ``S = A + B``.

    Ports: ``A[width]``, ``B[width]``, ``S[width]`` and optionally ``CO``.
    Overflow wraps (two's-complement addition), matching the filter's use of
    fixed 18-bit accumulation.
    """
    if width < 1:
        raise NetlistError("adder width must be >= 1")
    module_name = name if name is not None else f"adder{width}"
    existing = netlist.find_definition(module_name)
    if existing is not None:
        return existing
    builder = _builder(netlist, module_name, cell_library=cell_library)
    gates = GateBuilder(builder)

    a = builder.input("A", width)
    b = builder.input("B", width)
    s = builder.output("S", width)
    carry = builder.ground()
    for bit in range(width):
        if bit < width - 1 or with_carry_out:
            total, carry_out = gates.full_adder(a[bit], b[bit], carry)
        else:
            total = gates.xor3(a[bit], b[bit], carry)
            carry_out = carry
        gates.buf(total, s[bit])
        carry = carry_out
    if with_carry_out:
        co = builder.output("CO", 1)
        gates.buf(carry, co[0])
    return builder.finish()


def ripple_carry_subtractor(netlist: Netlist, width: int,
                            name: Optional[str] = None,
                            cell_library: Optional[Library] = None,
                            ) -> Definition:
    """Build ``D = A - B`` (two's complement, wrap on overflow)."""
    if width < 1:
        raise NetlistError("subtractor width must be >= 1")
    module_name = name if name is not None else f"sub{width}"
    existing = netlist.find_definition(module_name)
    if existing is not None:
        return existing
    builder = _builder(netlist, module_name, cell_library=cell_library)
    gates = GateBuilder(builder)

    a = builder.input("A", width)
    b = builder.input("B", width)
    d = builder.output("D", width)
    borrow = builder.ground()
    for bit in range(width):
        if bit < width - 1:
            diff, borrow = gates.full_subtractor(a[bit], b[bit], borrow)
        else:
            diff = gates.xor3(a[bit], b[bit], borrow)
        gates.buf(diff, d[bit])
    return builder.finish()


def negator(netlist: Netlist, width: int, name: Optional[str] = None,
            cell_library: Optional[Library] = None) -> Definition:
    """Build a two's-complement negator ``P = -A`` (invert and add one)."""
    module_name = name if name is not None else f"neg{width}"
    existing = netlist.find_definition(module_name)
    if existing is not None:
        return existing
    builder = _builder(netlist, module_name, cell_library=cell_library)
    gates = GateBuilder(builder)

    a = builder.input("A", width)
    p = builder.output("P", width)
    carry = builder.power()  # the "+1"
    for bit in range(width):
        inverted = gates.inv(a[bit])
        if bit < width - 1:
            total, carry = gates.half_adder(inverted, carry)
        else:
            total = gates.xor2(inverted, carry)
        gates.buf(total, p[bit])
    return builder.finish()


def _shifted_addend(gates: GateBuilder, builder: NetlistBuilder,
                    source: Sequence[Net], shift: int, out_width: int,
                    ) -> List[Net]:
    """Sign-extend *source* and shift it left by *shift*, as pure wiring."""
    in_width = len(source)
    sign = source[in_width - 1]
    addend: List[Net] = []
    for bit in range(out_width):
        position = bit - shift
        if position < 0:
            addend.append(builder.ground())
        elif position < in_width:
            addend.append(source[position])
        else:
            addend.append(sign)
    return addend


def constant_multiplier(netlist: Netlist, coefficient: int, in_width: int,
                        out_width: int, name: Optional[str] = None,
                        cell_library: Optional[Library] = None) -> Definition:
    """Build a signed constant multiplier ``P = coefficient * A``.

    *A* is a two's-complement ``in_width``-bit input; *P* is a
    two's-complement ``out_width``-bit output.  The multiplier is realised as
    a shift-and-add network over the set bits of ``|coefficient|`` followed by
    an optional negation stage, which is how constant-coefficient multipliers
    are implemented in LUT fabric without dedicated multiplier blocks.
    """
    sign = "m" if coefficient < 0 else ""
    module_name = name if name is not None else \
        f"mult_{sign}{abs(coefficient)}_{in_width}x{out_width}"
    existing = netlist.find_definition(module_name)
    if existing is not None:
        return existing
    builder = _builder(netlist, module_name, cell_library=cell_library)
    gates = GateBuilder(builder)

    a = builder.input("A", in_width)
    p = builder.output("P", out_width)
    magnitude = abs(coefficient)

    if magnitude == 0:
        zero = builder.ground()
        for bit in range(out_width):
            gates.buf(zero, p[bit])
        return builder.finish()

    shifts = [position for position in range(magnitude.bit_length())
              if (magnitude >> position) & 1]
    partial = _shifted_addend(gates, builder, a, shifts[0], out_width)
    for shift in shifts[1:]:
        addend = _shifted_addend(gates, builder, a, shift, out_width)
        partial = _add_words(gates, partial, addend)

    if coefficient < 0:
        partial = _negate_word(gates, builder, partial)

    for bit in range(out_width):
        gates.buf(partial[bit], p[bit])
    return builder.finish()


def _add_words(gates: GateBuilder, a: Sequence[Net], b: Sequence[Net],
               ) -> List[Net]:
    """Ripple-add two equal-width words inside the current definition."""
    if len(a) != len(b):
        raise NetlistError("word widths differ in _add_words")
    width = len(a)
    result: List[Net] = []
    carry = gates.builder.ground()
    for bit in range(width):
        if bit < width - 1:
            total, carry = gates.full_adder(a[bit], b[bit], carry)
        else:
            total = gates.xor3(a[bit], b[bit], carry)
        result.append(total)
    return result


def _negate_word(gates: GateBuilder, builder: NetlistBuilder,
                 word: Sequence[Net]) -> List[Net]:
    """Two's-complement negation of a word inside the current definition."""
    width = len(word)
    result: List[Net] = []
    carry = builder.power()
    for bit in range(width):
        inverted = gates.inv(word[bit])
        if bit < width - 1:
            total, carry = gates.half_adder(inverted, carry)
        else:
            total = gates.xor2(inverted, carry)
        result.append(total)
    return result


def min_output_width(coefficients: Sequence[int], data_width: int) -> int:
    """Smallest signed width that holds ``sum(|c_i|) * max|A|`` without overflow.

    This reproduces the paper's sizing argument: the 11-tap filter with the
    given coefficients fits in 18-bit accumulators for 9-bit samples.
    """
    total_gain = sum(abs(c) for c in coefficients)
    if total_gain == 0:
        return data_width
    max_input_magnitude = 1 << (data_width - 1)
    max_output_magnitude = total_gain * max_input_magnitude
    width = 1
    while (1 << (width - 1)) < max_output_magnitude:
        width += 1
    return width
