"""Ablation benchmarks beyond the paper's tables.

* the analytical partition-granularity sweep behind the "optimal partition"
  conclusion (DESIGN.md design-choice: voter granularity);
* per-domain floorplanning, the mitigation the paper defers to future work;
* the sensitivity of the measured percentages to the fault-list selection
  mode (DESIGN.md design-choice: what counts as a "bit related to the DUT").
"""

from repro.core import EveryKth, sweep_partitions
from repro.experiments import campaign_config_for, fault_list_mode_study, \
    partition_sweep
from repro.faults import run_campaign
from repro.pnr import Floorplan, implement


def test_ablation_partition_granularity_sweep(benchmark, design_suite):
    result = benchmark.pedantic(
        lambda: partition_sweep(design_suite, granularities=(1, 2, 3, 5)),
        rounds=1, iterations=1)
    benchmark.extra_info["sweep"] = result

    candidates = result["candidates"]
    assert len(candidates) == 4
    by_voters = sorted(candidates, key=lambda c: c["voters"])
    # More voters monotonically reduce the analytical defeat probability...
    assert by_voters[0]["defeat_probability"] >= \
        by_voters[-1]["defeat_probability"]
    # ...but cost area: the sweep exposes the trade-off the paper measures.
    assert by_voters[-1]["voter_area_luts"] > by_voters[0]["voter_area_luts"]


def test_ablation_floorplanning(benchmark, design_suite, implementations,
                                campaigns):
    """Dedicated per-domain floorplanning (paper future work) versus the
    default interleaved placement, on the minimum-partition TMR version."""
    from repro.experiments import device_for

    def run():
        flat = design_suite.flat["TMR_p3"]
        device = device_for(design_suite, "TMR_p3")
        floorplanned = implement(
            flat, device, floorplan=Floorplan.vertical_thirds(device),
            anneal_moves_per_slice=design_suite.scale.anneal_moves_per_slice)
        config = campaign_config_for(design_suite)
        return run_campaign(floorplanned, config)

    floorplanned_campaign = benchmark.pedantic(run, rounds=1, iterations=1)
    interleaved = campaigns["TMR_p3"]
    benchmark.extra_info["floorplan_study"] = {
        "interleaved_percent": round(interleaved.wrong_answer_percent, 3),
        "floorplanned_percent": round(
            floorplanned_campaign.wrong_answer_percent, 3),
    }
    # Floorplanning must not make things dramatically worse; typically it
    # removes a large share of the remaining cross-domain vulnerability.
    assert floorplanned_campaign.wrong_answer_percent <= \
        interleaved.wrong_answer_percent + 1.0


def test_ablation_fault_list_mode(benchmark, design_suite, implementations):
    """Percentages under the 'programmed bits only' reading of the paper's
    fault selection versus the default 'all design-related bits'."""
    study = benchmark.pedantic(
        lambda: fault_list_mode_study(implementations["standard"],
                                      design_suite),
        rounds=1, iterations=1)
    benchmark.extra_info["fault_list_modes"] = study
    # Restricting the list to programmed (set) bits concentrates it on
    # effective upsets, so the wrong-answer share rises — towards the
    # paper's 97% for the unprotected filter.
    assert study["programmed"]["wrong_percent"] >= \
        study["design"]["wrong_percent"]
