"""Developer tooling for the repro codebase (not part of the runtime API).

:mod:`repro.devtools.lint` is the custom AST-based invariant analyzer
(``python -m repro.devtools.lint src/``).  Nothing under this package is
imported by the runtime layers; it exists so the repository's
correctness discipline — determinism, concurrency, atomicity,
picklability — is checked *before* code runs, not only by the
equivalence tests after the fact.
"""
