"""Gate-to-LUT construction and LUT packing optimization."""

from .gates import GateBuilder
from .mapper import (MapperReport, lut_histogram, merge_luts,
                     remove_buffer_luts)

__all__ = ["GateBuilder", "MapperReport", "lut_histogram", "merge_luts",
           "remove_buffer_luts"]
