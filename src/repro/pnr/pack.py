"""Packing: assign LUT and flip-flop cells of a flat netlist to slice sites.

Each tile holds one slice with two LUT4 positions (``F``, ``G``) and two
flip-flops (``FFX``, ``FFY``).  A flip-flop whose data input is driven by the
LUT in its paired position uses the dedicated intra-slice data path (the
``DMUX`` configuration bit) instead of general routing — exactly the
structure a real mapper produces for the filter's registered datapaths.

Packing keeps cells of the same TMR domain and the same source component
adjacent, which is what a timing-driven packer would do for locality; note
that this also means the three redundant copies of a component end up packed
near each other unless a floorplan is applied — the realistic, un-floorplanned
situation the paper evaluates.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..cells.library import FF_CELLS, LUT_CELLS
from ..netlist.ir import Definition, Instance, InstancePin, NetlistError
from ..netlist.traversal import topological_order

#: Cells that never occupy a slice site (constants are tie-offs, the global
#: buffer lives on the clock network, I/O buffers live in IOBs).
VIRTUAL_CELLS = frozenset({"GND", "VCC", "BUFG", "IBUF", "OBUF"})


@dataclasses.dataclass
class SliceAssignment:
    """Contents of one slice."""

    index: int
    #: slot name -> flat cell name (slots: F, G, FFX, FFY)
    cells: Dict[str, str] = dataclasses.field(default_factory=dict)
    #: FF slots fed directly by their paired LUT (DMUX = LUT path)
    direct_ff_data: List[str] = dataclasses.field(default_factory=list)

    def lut_count(self) -> int:
        return sum(1 for slot in ("F", "G") if slot in self.cells)

    def ff_count(self) -> int:
        return sum(1 for slot in ("FFX", "FFY") if slot in self.cells)

    def is_empty(self) -> bool:
        return not self.cells


@dataclasses.dataclass
class PackResult:
    """Output of the packer."""

    slices: List[SliceAssignment]
    #: flat cell name -> (slice index, slot)
    cell_site: Dict[str, Tuple[int, str]]
    #: number of LUT cells packed
    num_luts: int
    #: number of flip-flop cells packed
    num_ffs: int

    @property
    def num_slices(self) -> int:
        return len(self.slices)

    def slot_of(self, cell_name: str) -> Tuple[int, str]:
        return self.cell_site[cell_name]


def _sort_key(instance: Instance, topo_rank: Dict[str, int]) -> Tuple:
    """Packing order: source component first, then TMR domain, then dataflow.

    Ordering by component before domain interleaves the three redundant
    copies of each block (and the voters that vote it) in neighbouring
    slices.  This is what a wirelength-driven flow without dedicated
    floorplanning produces — the exact situation the paper studies, in which
    wires of different TMR domains run close enough together for a single
    routing upset to couple them.  The :class:`~repro.pnr.place.Floorplan`
    option overrides this with per-domain regions.
    """
    domain = instance.properties.get("domain")
    block = instance.properties.get("tmr_block")
    if block is None:
        block = instance.name.split("/", 1)[0]
    return (
        str(block),
        domain if domain is not None else -1,
        topo_rank.get(instance.name, 0),
        instance.name,
    )


def _ff_data_driver(ff: Instance) -> Optional[Instance]:
    """The LUT driving a flip-flop's D input, if any."""
    net = ff.net_of("D")
    if net is None:
        return None
    drivers = [pin.instance for pin in net.drivers()
               if isinstance(pin, InstancePin)]
    if len(drivers) != 1:
        return None
    driver = drivers[0]
    if driver.reference.name in LUT_CELLS:
        return driver
    return None


def pack(definition: Definition) -> PackResult:
    """Pack the primitive cells of a flat definition into slices."""
    for inst in definition.instances.values():
        if not inst.is_primitive:
            raise NetlistError(
                f"packing requires a flat netlist; {inst.name!r} is "
                f"hierarchical")

    topo_rank = {inst.name: rank
                 for rank, inst in enumerate(topological_order(definition))}

    luts = [inst for inst in definition.instances.values()
            if inst.reference.name in LUT_CELLS]
    ffs = [inst for inst in definition.instances.values()
           if inst.reference.name in FF_CELLS]

    # Pair each flip-flop with the LUT that drives its D input, when that
    # LUT is not already claimed by another flip-flop.
    lut_partner: Dict[str, str] = {}
    ff_partner: Dict[str, str] = {}
    for ff in sorted(ffs, key=lambda i: _sort_key(i, topo_rank)):
        driver = _ff_data_driver(ff)
        if driver is None or driver.name in lut_partner:
            continue
        lut_partner[driver.name] = ff.name
        ff_partner[ff.name] = driver.name

    # Build packing units: (lut name or None, ff name or None).
    units: List[Tuple[Optional[str], Optional[str], Tuple]] = []
    consumed_ffs = set()
    for lut in luts:
        ff_name = lut_partner.get(lut.name)
        if ff_name is not None:
            consumed_ffs.add(ff_name)
        units.append((lut.name, ff_name, _sort_key(lut, topo_rank)))
    for ff in ffs:
        if ff.name not in consumed_ffs:
            units.append((None, ff.name, _sort_key(ff, topo_rank)))
    units.sort(key=lambda entry: entry[2])

    slices: List[SliceAssignment] = []
    cell_site: Dict[str, Tuple[int, str]] = {}
    half_slots = (("F", "FFX"), ("G", "FFY"))

    for position, (lut_name, ff_name, _key) in enumerate(units):
        if position % 2 == 0:
            slices.append(SliceAssignment(index=len(slices)))
        slice_assignment = slices[-1]
        lut_slot, ff_slot = half_slots[position % 2]
        if lut_name is not None:
            slice_assignment.cells[lut_slot] = lut_name
            cell_site[lut_name] = (slice_assignment.index, lut_slot)
        if ff_name is not None:
            slice_assignment.cells[ff_slot] = ff_name
            cell_site[ff_name] = (slice_assignment.index, ff_slot)
            if lut_name is not None:
                slice_assignment.direct_ff_data.append(ff_slot)

    return PackResult(
        slices=slices,
        cell_site=cell_site,
        num_luts=len(luts),
        num_ffs=len(ffs),
    )
