"""Campaign-as-a-service: async job runner over a shared warm-cache tier.

The service layer wraps the scenario pipeline (:mod:`repro.scenarios` /
:mod:`repro.pipeline`) in a long-running orchestrator:

* :mod:`repro.service.tier` — one persistent cache tier unifying the
  flow-artifact store with new on-disk stores for golden traces and
  static defeat maps, size-bounded LRU eviction, atomic writes;
* :mod:`repro.service.jobs` — the job queue: submissions, states,
  in-flight request coalescing by content fingerprint;
* :mod:`repro.service.orchestrator` — the asyncio orchestrator executing
  jobs with bounded concurrency, sharding each campaign's fault tasks
  across worker processes through the engine's sharded backend;
* :mod:`repro.service.httpd` — a dependency-free HTTP surface
  (``repro serve`` / ``repro submit``) over the orchestrator.

Everything here is stdlib-only; campaigns stay bit-identical to a direct
:func:`repro.scenarios.run_scenario` call (enforced by the test suite).
"""

from .jobs import (JobQueue, JobSpec, JobState,  # noqa: F401
                   job_fingerprint)
from .orchestrator import CampaignService  # noqa: F401
from .tier import (SharedCacheTier, activate_tier,  # noqa: F401
                   active_tier, deactivate_tier, resolve_tier)

__all__ = [
    "CampaignService",
    "JobQueue",
    "JobSpec",
    "JobState",
    "SharedCacheTier",
    "activate_tier",
    "active_tier",
    "deactivate_tier",
    "job_fingerprint",
    "resolve_tier",
]
