"""The paper's case-study design: an 11-tap, 9-bit low-pass FIR filter.

The filter is built in direct form: a delay line of ``taps - 1`` registers,
one constant-coefficient multiplier per tap and a chain of adders, which
matches the paper's inventory of "eleven dedicated 9-bit multipliers, ten
18-bit adders and ten 9-bit registers".  Each multiplier, adder and register
is a separate component instance so that the TMR engine can insert voters at
any component boundary (Figure 4 of the paper).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from ..cells.library import shared_cell_library
from ..netlist.builder import NetlistBuilder
from ..netlist.ir import Definition, Library, Netlist, NetlistError
from .arith import constant_multiplier, min_output_width, ripple_carry_adder
from .register import register_bank

#: The paper's quantized low-pass coefficients ("multiplied by the constant
#: 512"): 1, -1, -9, 6, 73, 120 — mirrored to form a symmetric 11-tap filter.
PAPER_COEFFICIENT_HALF = (1, -1, -9, 6, 73, 120)
PAPER_COEFFICIENTS = tuple(list(PAPER_COEFFICIENT_HALF)
                           + list(reversed(PAPER_COEFFICIENT_HALF[:-1])))
PAPER_DATA_WIDTH = 9
PAPER_OUTPUT_WIDTH = 18


@dataclasses.dataclass(frozen=True)
class FirSpec:
    """Parameters of a FIR filter instance.

    The defaults reproduce the paper's filter; reduced configurations are
    used for fast tests and scaled-down campaigns.
    """

    coefficients: Tuple[int, ...] = PAPER_COEFFICIENTS
    data_width: int = PAPER_DATA_WIDTH
    output_width: int = PAPER_OUTPUT_WIDTH
    name: str = "fir"

    def __post_init__(self) -> None:
        if not self.coefficients:
            raise ValueError("FIR needs at least one coefficient")
        if self.data_width < 2:
            raise ValueError("FIR data width must be >= 2")
        minimum = min_output_width(self.coefficients, self.data_width)
        if self.output_width < minimum:
            raise ValueError(
                f"output width {self.output_width} cannot hold the filter "
                f"gain; need at least {minimum} bits")

    @property
    def taps(self) -> int:
        return len(self.coefficients)

    @property
    def delay_stages(self) -> int:
        return self.taps - 1

    @classmethod
    def paper(cls) -> "FirSpec":
        """The exact configuration evaluated in the paper."""
        return cls()

    @classmethod
    def scaled(cls, taps: int, data_width: int, name: str = "fir_small",
               ) -> "FirSpec":
        """A reduced filter preserving the paper's coefficient profile."""
        if taps < 1:
            raise ValueError("taps must be >= 1")
        half = list(PAPER_COEFFICIENT_HALF)
        coefficients: List[int] = []
        for index in range(taps):
            mirrored = min(index, taps - 1 - index)
            coefficients.append(half[min(mirrored, len(half) - 1)])
        width = min_output_width(coefficients, data_width)
        return cls(coefficients=tuple(coefficients), data_width=data_width,
                   output_width=width, name=name)


@dataclasses.dataclass
class FirComponents:
    """Index of the component instances inside a generated FIR definition.

    The TMR partition strategies use these lists to decide where voters go
    (e.g. "after each adder" for the medium partition).
    """

    registers: List[str] = dataclasses.field(default_factory=list)
    multipliers: List[str] = dataclasses.field(default_factory=list)
    adders: List[str] = dataclasses.field(default_factory=list)

    def all_components(self) -> List[str]:
        return self.registers + self.multipliers + self.adders


def build_fir(netlist: Netlist, spec: Optional[FirSpec] = None,
              cell_library: Optional[Library] = None,
              ) -> Tuple[Definition, FirComponents]:
    """Build the FIR filter and return (definition, component index)."""
    spec = spec if spec is not None else FirSpec.paper()
    cells = cell_library if cell_library is not None else shared_cell_library()
    if netlist.find_definition(spec.name) is not None:
        raise NetlistError(f"netlist already contains a design named "
                           f"{spec.name!r}")

    builder = NetlistBuilder.new_module(netlist, spec.name, "work", cells)
    components = FirComponents()

    clock = builder.input("CLK", 1)[0]
    din = builder.input("DIN", spec.data_width)
    dout = builder.output("DOUT", spec.output_width)

    # Delay line: tap 0 is the live input, taps 1..N-1 are registered copies.
    reg_def = register_bank(netlist, spec.data_width, cell_library=cells)
    tap_values = [din]
    for stage in range(1, spec.taps):
        stage_out = builder.bus(f"x{stage}", spec.data_width)
        inst = builder.submodule(reg_def, f"reg_{stage}", C=clock,
                                 D=tap_values[stage - 1], Q=stage_out)
        inst.properties["component"] = "register"
        components.registers.append(inst.name)
        tap_values.append(stage_out)

    # Per-tap constant multipliers.
    products = []
    for tap, coefficient in enumerate(spec.coefficients):
        mult_def = constant_multiplier(netlist, coefficient, spec.data_width,
                                       spec.output_width, cell_library=cells)
        if spec.taps == 1:
            product = dout  # degenerate single-tap filter: product is DOUT
        else:
            product = builder.bus(f"p{tap}", spec.output_width)
        inst = builder.submodule(mult_def, f"mult_{tap}", A=tap_values[tap],
                                 P=product)
        inst.properties["component"] = "multiplier"
        inst.properties["coefficient"] = coefficient
        components.multipliers.append(inst.name)
        products.append(product)

    # Accumulation chain.
    adder_def = ripple_carry_adder(netlist, spec.output_width,
                                   cell_library=cells)
    partial = products[0]
    for tap in range(1, spec.taps):
        is_last = tap == spec.taps - 1
        total = dout if is_last else builder.bus(f"s{tap}", spec.output_width)
        inst = builder.submodule(adder_def, f"add_{tap}", A=partial,
                                 B=products[tap], S=total)
        inst.properties["component"] = "adder"
        components.adders.append(inst.name)
        partial = total

    definition = builder.finish(set_top=True)
    definition.properties["fir_spec"] = spec
    definition.properties["fir_components"] = components
    return definition, components


def fir_reference(spec: FirSpec, samples: Sequence[int]) -> List[int]:
    """Bit-accurate behavioural model of the generated filter.

    *samples* are signed integers presented one per clock cycle on ``DIN``.
    The returned list contains, for each cycle, the value visible on ``DOUT``
    during that cycle (combinational response to the current input and the
    delay-line state *before* the cycle's clock edge), wrapped to the signed
    output width exactly like the hardware adders wrap.
    """
    mask = (1 << spec.output_width) - 1
    sign_bit = 1 << (spec.output_width - 1)
    delays = [0] * spec.delay_stages
    outputs: List[int] = []
    for sample in samples:
        taps = [sample] + delays
        accumulator = 0
        for coefficient, value in zip(spec.coefficients, taps):
            accumulator = (accumulator + coefficient * value) & mask
        signed = accumulator - (1 << spec.output_width) \
            if accumulator & sign_bit else accumulator
        outputs.append(signed)
        if spec.delay_stages:
            delays = [sample] + delays[:-1]
    return outputs


def expected_component_counts(spec: FirSpec) -> Dict[str, int]:
    """The paper's component inventory for a given spec (Table-style check)."""
    return {
        "registers": spec.delay_stages,
        "multipliers": spec.taps,
        "adders": spec.taps - 1,
    }
