"""Integration tests of the paper's central mechanism.

These tests exercise the claim behind Figures 1 and 3 end to end: a routing
upset confined to one TMR domain is always masked; an upset coupling two
domains defeats the TMR exactly when both corrupted signals live in the same
voter region, and partitioning the logic with voters blocks it.
"""

import pytest

from repro.core import check_domain_isolation
from repro.faults import CampaignConfig, FaultListManager, FaultModeler, \
    categories, run_campaign
from repro.netlist import flatten
from repro.rtl import fir_reference
from repro.sim import (BLEND_SHORT, CompiledDesign, FaultOverlay,
                       Simulator, SourceOverride, compare_traces,
                       random_samples, tmr_stimulus_from_samples)


def _compiled_variant(tiny_fir, tiny_tmr_suite, name, flat_name):
    netlist, spec, _top, _components = tiny_fir
    flat = flatten(netlist, tiny_tmr_suite[name].definition,
                   flat_name=flat_name)
    return spec, flat, CompiledDesign(flat)


def _nets_of_block_and_domain(compiled, block_keyword, domain):
    """Indices of nets driven by cells of one component copy in one domain."""
    nets = []
    for gate in compiled.gates:
        properties = gate.instance.properties
        if properties.get("domain") != domain:
            continue
        if block_keyword not in gate.instance.name:
            continue
        if properties.get("voter"):
            continue
        nets.append(gate.output_net)
    return nets


def _cross_domain_bridge_overlay(compiled, net_a, net_b):
    """Short two nets: both sides read an unknown whenever they disagree."""
    overlay = FaultOverlay(description="test bridge")
    blend_ab = SourceOverride.blend_of(net_a, net_b, BLEND_SHORT)
    overlay.net_overrides[net_a] = blend_ab
    overlay.net_overrides[net_b] = SourceOverride.blend_of(net_b, net_a,
                                                           BLEND_SHORT)
    overlay.seed_nets = [net_a, net_b]
    overlay.comb_passes = 3
    return overlay


class TestVoterBarrierMechanism:
    """Upset "b" of Figure 1/3: a short between two redundant domains."""

    def _run(self, spec, compiled, overlay):
        samples = random_samples(12, spec.data_width, seed=77)
        stimulus = tmr_stimulus_from_samples(samples)
        golden = Simulator(compiled).run(stimulus)
        faulty = Simulator(compiled, overlay).run(stimulus)
        return compare_traces(faulty, golden), golden, samples

    def test_same_region_cross_domain_short_defeats_unpartitioned_tmr(
            self, tiny_fir, tiny_tmr_suite):
        # Short a multiplier-internal signal of domain 0 against an
        # adder-internal signal of domain 1: two *different* signals, so the
        # wired-AND corrupts both domains, and with no voter barriers both
        # corruptions reach the final voter.
        spec, _flat, compiled = _compiled_variant(
            tiny_fir, tiny_tmr_suite, "p3_nv", "int_p3nv")
        nets_domain0 = _nets_of_block_and_domain(compiled, "mult_1", 0)
        nets_domain1 = _nets_of_block_and_domain(compiled, "add_1", 1)
        assert nets_domain0 and nets_domain1
        overlay = _cross_domain_bridge_overlay(compiled, nets_domain0[0],
                                               nets_domain1[0])
        comparison, _golden, _samples = self._run(spec, compiled, overlay)
        assert comparison.wrong_answer, \
            "a cross-domain short inside one voter region must defeat " \
            "minimum-partition TMR"

    def test_voter_barrier_blocks_cross_domain_short(self, tiny_fir,
                                                     tiny_tmr_suite):
        """The same short is masked when the two corrupted signals live in
        different voter regions (maximum partition): Figure 3's upset "b"."""
        spec, _flat, compiled = _compiled_variant(
            tiny_fir, tiny_tmr_suite, "p1", "int_p1")
        nets_domain0 = _nets_of_block_and_domain(compiled, "mult_1", 0)
        nets_domain1 = _nets_of_block_and_domain(compiled, "add_1", 1)
        assert nets_domain0 and nets_domain1
        overlay = _cross_domain_bridge_overlay(compiled, nets_domain0[0],
                                               nets_domain1[0])
        comparison, _golden, _samples = self._run(spec, compiled, overlay)
        assert not comparison.wrong_answer, \
            "voter barriers must mask a short whose two victims are in " \
            "different voter regions"

    def test_single_domain_short_always_masked(self, tiny_fir,
                                               tiny_tmr_suite):
        """Upset "a" of Figure 1: both shorted signals in the same domain."""
        spec, _flat, compiled = _compiled_variant(
            tiny_fir, tiny_tmr_suite, "p3", "int_p3_single")
        nets_domain0 = _nets_of_block_and_domain(compiled, "mult_1", 0)
        other_domain0 = _nets_of_block_and_domain(compiled, "add_1", 0)
        assert nets_domain0 and other_domain0
        overlay = _cross_domain_bridge_overlay(compiled, nets_domain0[0],
                                               other_domain0[0])
        comparison, _golden, _samples = self._run(spec, compiled, overlay)
        assert not comparison.wrong_answer

    def test_tmr_still_correct_without_faults(self, tiny_fir,
                                              tiny_tmr_suite):
        netlist, spec, _top, _components = tiny_fir
        for name in ("p1", "p2"):
            flat = netlist.find_definition(f"int_{name}") \
                if netlist.find_definition(f"int_{name}") is not None \
                else flatten(netlist, tiny_tmr_suite[name].definition,
                             flat_name=f"int_check_{name}")
            compiled = CompiledDesign(flat)
            samples = random_samples(10, spec.data_width, seed=13)
            trace = Simulator(compiled).run(
                tmr_stimulus_from_samples(samples))
            assert trace.output_ints("DOUT") == fir_reference(spec, samples)


class TestImplementedCampaignOrdering:
    """End-to-end (placed and routed) sanity of the Table 3 ordering on the
    tiny configuration: TMR protects, unvoted registers protect less."""

    @pytest.fixture(scope="class")
    def campaign_results(self, tiny_fir, tiny_tmr_suite,
                         tiny_fir_implementation):
        from repro.fpga import device_by_name
        from repro.pnr import implement

        netlist, _spec, _top, _components = tiny_fir
        config = CampaignConfig(num_faults=500, workload_cycles=10, seed=21)
        results = {"standard": run_campaign(tiny_fir_implementation, config)}
        for name in ("p2", "p3_nv"):
            flat = flatten(netlist, tiny_tmr_suite[name].definition,
                           flat_name=f"campaign_{name}")
            implementation = implement(flat, device_by_name("XC2S50E"),
                                       anneal_moves_per_slice=2)
            results[name] = run_campaign(implementation, config)
        return results

    def test_tmr_reduces_wrong_answers(self, campaign_results):
        assert campaign_results["p2"].wrong_answer_percent < \
            campaign_results["standard"].wrong_answer_percent / 3

    def test_unvoted_registers_not_better_than_voted_partition(
            self, campaign_results):
        assert campaign_results["p2"].wrong_answer_percent <= \
            campaign_results["p3_nv"].wrong_answer_percent + 0.5

    def test_lut_upsets_never_defeat_tmr(self, campaign_results):
        for name in ("p2", "p3_nv"):
            lut_bucket = campaign_results[name].by_category.get(
                categories.LUT)
            assert lut_bucket is None or lut_bucket.wrong == 0

    def test_domain_isolation_preserved_after_flatten(self, tiny_fir,
                                                      tiny_tmr_suite):
        netlist, _spec, _top, _components = tiny_fir
        result = tiny_tmr_suite["p2"]
        report = check_domain_isolation(result.definition)
        assert report.ok
