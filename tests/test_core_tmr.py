"""Tests for the TMR engine: triplication, voters, partitions (Figures 1-3)."""

import pytest

from repro.core import (NUM_DOMAINS, AllComponents, ByComponentType, EveryKth,
                        ExplicitPartition, NoPartition, TMRConfig, apply_tmr,
                        build_voted_register, check_domain_isolation,
                        component_topological_order, compute_voter_regions,
                        count_voters, cross_domain_signal_pairs, domain_of,
                        estimate_robustness, insert_majority_voter,
                        is_register_component, is_voter, register_components,
                        strategy_from_name, voter_instances)
from repro.netlist import Netlist, flatten, validate_definition
from repro.rtl import fir_reference
from repro.sim import (CompiledDesign, Simulator, random_samples,
                       tmr_stimulus_from_samples)


class TestPartitionStrategies:
    def test_all_components_excludes_registers(self, tiny_fir):
        _netlist, _spec, top, components = tiny_fir
        selected = AllComponents().select(top)
        assert set(components.multipliers) <= selected
        assert set(components.adders) <= selected
        assert not (set(components.registers) & selected)

    def test_by_component_type(self, tiny_fir):
        _netlist, _spec, top, components = tiny_fir
        selected = ByComponentType(("adder",)).select(top)
        assert selected == set(components.adders)

    def test_no_partition_empty(self, tiny_fir):
        _netlist, _spec, top, _components = tiny_fir
        assert NoPartition().select(top) == set()

    def test_explicit_partition_validates_names(self, tiny_fir):
        _netlist, _spec, top, components = tiny_fir
        strategy = ExplicitPartition([components.adders[0]])
        assert strategy.select(top) == {components.adders[0]}
        with pytest.raises(KeyError):
            ExplicitPartition(["missing_component"]).select(top)

    def test_every_kth_granularity(self, tiny_fir):
        _netlist, _spec, top, _components = tiny_fir
        all_count = len(EveryKth(1).select(top))
        half_count = len(EveryKth(2).select(top))
        assert all_count > half_count >= 1
        assert all_count == len(AllComponents().select(top))
        with pytest.raises(ValueError):
            EveryKth(0)

    def test_component_topological_order(self, tiny_fir):
        _netlist, _spec, top, components = tiny_fir
        order = [inst.name for inst in component_topological_order(top)]
        assert set(order) == set(top.instances)
        # the multiplier of tap 0 feeds the first adder
        assert order.index(components.multipliers[0]) < \
            order.index(components.adders[0])

    def test_is_register_component(self, tiny_fir):
        _netlist, _spec, top, components = tiny_fir
        assert is_register_component(top.instances[components.registers[0]])
        assert not is_register_component(
            top.instances[components.multipliers[0]])
        assert len(register_components(top)) == len(components.registers)

    def test_strategy_from_name(self):
        assert isinstance(strategy_from_name("max"), AllComponents)
        assert isinstance(strategy_from_name("min"), NoPartition)
        assert strategy_from_name("every:3").k == 3
        assert strategy_from_name("type:adder").component_types == ("adder",)
        with pytest.raises(ValueError):
            strategy_from_name("bogus")


class TestVoters:
    def test_insert_majority_voter_structure(self, netlist, cells, builder):
        nets = [builder.wire(f"in{i}") for i in range(3)]
        out = builder.wire("out")
        voter = insert_majority_voter(builder.definition, nets, out,
                                      cell_library=cells, domain=1,
                                      voted_net="sig")
        assert is_voter(voter)
        assert voter.reference.name == "LUT3"
        assert domain_of(voter) == 1
        assert count_voters(builder.definition) == 1

    def test_insert_majority_voter_needs_three_inputs(self, netlist, cells,
                                                      builder):
        nets = [builder.wire("a"), builder.wire("b")]
        with pytest.raises(Exception):
            insert_majority_voter(builder.definition, nets,
                                  builder.wire("o"), cell_library=cells)

    def test_voted_register_macro(self):
        netlist = Netlist("vr")
        macro = build_voted_register(netlist, 3)
        counts = macro.count_primitives()
        assert counts["FD"] == 9          # 3 bits x 3 domains
        assert counts["LUT3"] == 9        # 3 voters per bit
        assert {"D_tr0", "C_tr1", "Q_tr2"} <= set(macro.ports)
        # reuse by name
        assert build_voted_register(netlist, 3) is macro

    def test_voted_register_masks_flip_flop_upset(self):
        netlist = Netlist("vr2")
        macro = build_voted_register(netlist, 2)
        netlist.set_top(macro)
        flat = flatten(netlist, macro)
        compiled = CompiledDesign(flat)
        # Corrupt one domain's flip-flop initial state: outputs still agree
        # with the uncorrupted value after the first load.
        from repro.sim import FaultOverlay

        overlay = FaultOverlay(ff_init_overrides={0: 1})
        stimulus = [{f"D_tr{d}": 0 for d in range(3)} for _ in range(2)]
        trace = Simulator(compiled, overlay).run(stimulus)
        for domain in range(3):
            assert trace.outputs[0][f"Q_tr{domain}"] == [0, 0]


class TestApplyTMR:
    def test_triplication_counts(self, tiny_fir, tiny_tmr_suite):
        _netlist, _spec, top, _components = tiny_fir
        result = tiny_tmr_suite["p3"]
        non_voter = [inst for inst in result.definition.instances.values()
                     if not is_voter(inst)]
        assert len(non_voter) == NUM_DOMAINS * len(top.instances)

    def test_input_ports_triplicated(self, tiny_tmr_suite):
        definition = tiny_tmr_suite["p3"].definition
        for domain in range(NUM_DOMAINS):
            assert f"DIN_tr{domain}" in definition.ports
            assert f"CLK_tr{domain}" in definition.ports
        assert "DOUT" in definition.ports

    def test_voter_counts_ordering(self, tiny_tmr_suite):
        p1 = tiny_tmr_suite["p1"].voter_count
        p2 = tiny_tmr_suite["p2"].voter_count
        p3 = tiny_tmr_suite["p3"].voter_count
        p3_nv = tiny_tmr_suite["p3_nv"].voter_count
        assert p1 > p2 > p3 > p3_nv
        # p3_nv has only the final output voters
        assert p3_nv == tiny_tmr_suite["p3_nv"].voters_by_role["output"]

    def test_intermediate_voters_triplicated(self, tiny_tmr_suite):
        result = tiny_tmr_suite["p2"]
        barrier_voters = [inst for inst in voter_instances(result.definition)
                          if inst.properties.get("voter") == "barrier"]
        assert len(barrier_voters) % NUM_DOMAINS == 0
        assert all(domain_of(v) is not None for v in barrier_voters)

    def test_output_voter_single_per_bit(self, tiny_fir, tiny_tmr_suite):
        _netlist, spec, _top, _components = tiny_fir
        for result in tiny_tmr_suite.values():
            assert result.voters_by_role["output"] == spec.output_width

    def test_domain_isolation(self, tiny_tmr_suite):
        for name, result in tiny_tmr_suite.items():
            report = check_domain_isolation(result.definition)
            assert report.ok, f"{name}: {report.violations[:3]}"

    def test_flattened_tmr_is_valid(self, tiny_fir, tiny_tmr_suite):
        netlist, _spec, _top, _components = tiny_fir
        flat = flatten(netlist, tiny_tmr_suite["p1"].definition,
                       flat_name="p1_valid_check")
        assert validate_definition(flat).ok

    def test_tmr_functional_equivalence(self, tiny_fir, tiny_tmr_suite):
        netlist, spec, _top, _components = tiny_fir
        samples = random_samples(16, spec.data_width, seed=4)
        reference = fir_reference(spec, samples)
        for name, result in tiny_tmr_suite.items():
            flat = flatten(netlist, result.definition,
                           flat_name=f"func_{name}")
            compiled = CompiledDesign(flat)
            trace = Simulator(compiled).run(
                tmr_stimulus_from_samples(samples))
            assert trace.output_ints("DOUT") == reference, name

    def test_single_domain_lut_fault_is_masked(self, tiny_fir,
                                               tiny_tmr_suite):
        """Figure 1 upset "a": a fault confined to one domain is out-voted."""
        from repro.sim import FaultOverlay

        netlist, spec, _top, _components = tiny_fir
        flat = flatten(netlist, tiny_tmr_suite["p3"].definition,
                       flat_name="masked_check")
        compiled = CompiledDesign(flat)
        samples = random_samples(10, spec.data_width, seed=5)
        stimulus = tmr_stimulus_from_samples(samples)
        golden = Simulator(compiled).run(stimulus)

        # Corrupt one LUT that belongs to domain 0.
        victim = next(gate for gate in compiled.gates
                      if gate.instance.properties.get("domain") == 0
                      and gate.kind == 0 and gate.num_inputs >= 2)
        overlay = FaultOverlay(lut_init_overrides={victim.index:
                                                   victim.init ^ 0xFFFF})
        faulty = Simulator(compiled, overlay).run(stimulus)
        assert faulty.output_ints("DOUT") == golden.output_ints("DOUT")

    def test_unprotected_lut_fault_not_masked(self, tiny_fir,
                                              tiny_fir_compiled):
        from repro.sim import FaultOverlay

        _netlist, spec, _top, _components = tiny_fir
        samples = random_samples(10, spec.data_width, seed=5)
        from repro.sim import stimulus_from_samples

        stimulus = stimulus_from_samples(samples)
        golden = Simulator(tiny_fir_compiled).run(stimulus)
        victim = next(gate for gate in tiny_fir_compiled.gates
                      if gate.kind == 0 and gate.num_inputs >= 2)
        overlay = FaultOverlay(lut_init_overrides={victim.index:
                                                   victim.init ^ 0xF})
        faulty = Simulator(tiny_fir_compiled, overlay).run(stimulus)
        assert faulty.output_ints("DOUT") != golden.output_ints("DOUT")

    def test_tmr_config_describe(self):
        config = TMRConfig(partition=AllComponents(), vote_registers=False)
        description = config.describe()
        assert "max" in description and "unvoted-regs" in description

    def test_duplicate_tmr_name_rejected(self, tiny_fir):
        netlist, _spec, top, _components = tiny_fir
        with pytest.raises(Exception):
            apply_tmr(netlist, top, TMRConfig(name_suffix="_t_p1"))

    def test_non_triplicated_inputs_option(self, tiny_fir):
        netlist, _spec, top, _components = tiny_fir
        config = TMRConfig(triplicate_inputs=False, triplicate_clock=False,
                           name_suffix="_shared_in")
        result = apply_tmr(netlist, top, config)
        assert "DIN" in result.definition.ports
        assert "DIN_tr0" not in result.definition.ports


class TestAnalysis:
    def test_voter_regions_increase_with_partitioning(self, tiny_tmr_suite):
        regions = {name: compute_voter_regions(result.definition).num_regions
                   for name, result in tiny_tmr_suite.items()}
        assert regions["p1"] > regions["p2"] > regions["p3_nv"]

    def test_defeat_probability_decreases_with_partitioning(self,
                                                            tiny_tmr_suite):
        probabilities = {
            name: estimate_robustness(result.definition)
            .cross_domain_defeat_probability
            for name, result in tiny_tmr_suite.items()}
        assert probabilities["p1"] < probabilities["p2"] \
            < probabilities["p3"] < probabilities["p3_nv"]
        # The registered pipeline still cuts the unvoted version into
        # regions (flip-flop outputs seed their own), so the probability is
        # high but no longer the degenerate single-region 1.0.
        assert probabilities["p3_nv"] < 1.0

    def test_cross_domain_pairs_grow_with_voters(self, tiny_tmr_suite):
        pairs = {name: cross_domain_signal_pairs(result.definition)
                 for name, result in tiny_tmr_suite.items()}
        assert pairs["p1"] > pairs["p2"] > pairs["p3_nv"]

    def test_isolation_flags_illegal_cross_domain_net(self, tiny_fir,
                                                      tiny_tmr_suite):
        netlist, _spec, _top, _components = tiny_fir
        result = tiny_tmr_suite["p2"]
        definition = result.definition
        # Create an artificial cross-domain short: connect a domain-0 net to
        # a domain-1 LUT input.
        domain0_net = next(net for net in definition.nets.values()
                           if net.properties.get("domain") == 0
                           and net.drivers())
        victim = next(inst for inst in definition.instances.values()
                      if inst.properties.get("domain") == 1
                      and not is_voter(inst))
        input_port = next(port for port in victim.reference.ports.values()
                          if port.is_input)
        spare_pin = victim.pin(input_port.name, 0)
        original_net = spare_pin.net
        domain0_net.connect(spare_pin)
        report = check_domain_isolation(definition)
        assert not report.ok
        # restore
        if original_net is not None:
            original_net.connect(spare_pin)
        else:
            domain0_net.disconnect(spare_pin)
