"""Tests for the layout-aware defeat analyzer and the voter-region fix.

Covers the PR's acceptance properties:

* the voter-region regression (a registered design without intermediate
  voters must decompose into flip-flop/primary-input regions instead of
  one lumped region 0, and undomained nets must never leak into the
  region sizes);
* critical-path voter depth monotonicity across the paper's partitions;
* soundness of the static classification — every bit predicted silent
  measures ``wrong_answers == 0`` under the serial backend, and every
  measured wrong-answer bit was predicted defeat-capable;
* prefiltered campaigns are verdict-identical (including
  ``first_mismatch_cycle``) to unfiltered ones across all four backends
  and under the multi-bit upset models.
"""

import random

import pytest

from repro.analysis.layout import (CORRECTABLE, DEFEAT, SILENT,
                                   LayoutAnalyzer, defeat_map_for,
                                   layout_robustness,
                                   prediction_vs_campaign)
from repro.core import compute_voter_regions, estimate_robustness
from repro.core.optimizer import _estimate_extra_levels
from repro.faults import (CampaignConfig, FaultListManager,
                          ProcessPoolBackend, run_campaign)


@pytest.fixture(scope="module")
def tmr_defeat_map(tiny_tmr_implementation):
    return defeat_map_for(tiny_tmr_implementation)


@pytest.fixture(scope="module")
def standard_defeat_map(tiny_fir_implementation):
    return defeat_map_for(tiny_fir_implementation)


class TestVoterRegionFix:
    def test_registered_unvoted_design_is_not_one_region(self,
                                                         tiny_tmr_suite):
        """The regression the seed code had: TMR_p3_nv has no in-domain
        voter outputs, so every net landed in one shared region 0 (a
        single region).  The fixed analysis seeds flip-flop outputs and
        disjoint primary-input cones separately."""
        report = compute_voter_regions(tiny_tmr_suite["p3_nv"].definition)
        assert report.num_regions >= 3
        assert any(label.startswith("ff:")
                   for label in report.region_seeds.values())
        assert any(label.startswith("input:")
                   for label in report.region_seeds.values())

    def test_undomained_nets_never_leak(self, tiny_tmr_suite):
        for result in tiny_tmr_suite.values():
            definition = result.definition
            report = compute_voter_regions(definition)
            for net_name in report.net_regions:
                net = definition.nets[net_name]
                assert net.properties.get("domain") == 0, net_name
            assert sum(report.region_sizes.values()) == \
                len(report.net_regions)

    def test_every_region_has_a_seed_label(self, tiny_tmr_suite):
        report = compute_voter_regions(tiny_tmr_suite["p2"].definition)
        assert set(report.region_seeds) == set(report.region_sizes)

    def test_regions_are_domain_symmetric(self, tiny_tmr_suite):
        """The three domains are structurally identical, so the region
        decomposition (count and size multiset) must match per domain."""
        definition = tiny_tmr_suite["p2"].definition
        reports = [compute_voter_regions(definition, domain)
                   for domain in range(3)]
        sizes = [sorted(report.region_sizes.values()) for report in reports]
        assert sizes[0] == sizes[1] == sizes[2]


class TestCriticalPathVoterDepth:
    def test_monotone_across_partitions(self, tiny_tmr_suite):
        levels = {name: _estimate_extra_levels(result)
                  for name, result in tiny_tmr_suite.items()}
        assert levels["p1"] >= levels["p2"] >= levels["p3"] \
            >= levels["p3_nv"] >= 1
        # The maximum partition stacks strictly more voters on the
        # critical path than the minimum one.
        assert levels["p1"] > levels["p3_nv"]

    def test_minimum_partition_counts_only_output_voter(self,
                                                        tiny_tmr_suite):
        # No intermediate voters and no voted registers: the only voter
        # level on any path is the final output voter.
        assert _estimate_extra_levels(tiny_tmr_suite["p3_nv"]) == 1

    def test_sweep_reports_path_depth_not_block_count(self, tiny_fir):
        from repro.core import sweep_partitions

        netlist, _spec, top, _components = tiny_fir
        sweep = sweep_partitions(netlist, top)
        by_name = {candidate.strategy.describe(): candidate
                   for candidate in sweep.candidates}
        assert by_name["max"].extra_logic_levels >= \
            by_name["min"].extra_logic_levels >= 1


class TestLayoutAnalyzer:
    def test_map_covers_the_fault_list(self, tiny_tmr_implementation,
                                       tmr_defeat_map):
        fault_list = FaultListManager(tiny_tmr_implementation).build()
        assert len(tmr_defeat_map) == len(set(fault_list.bits))
        counts = tmr_defeat_map.counts()
        assert sum(counts.values()) == len(tmr_defeat_map)
        assert counts[SILENT] > 0 and counts[DEFEAT] > 0

    def test_unprotected_design_has_no_correctable_bits(
            self, standard_defeat_map):
        # Without voters nothing can be out-voted: every effectful,
        # observable upset of the unprotected filter is defeat-capable.
        counts = standard_defeat_map.counts()
        assert counts[CORRECTABLE] == 0
        assert counts[DEFEAT] > 0

    def test_silent_bits_simulate_silent(self, tiny_tmr_implementation,
                                         tmr_defeat_map):
        """Soundness of the prefilter: bits predicted silent must produce
        wrong_answers == 0 under the serial backend.  Every effectful
        silent bit (the ones that would actually be simulated) is
        checked, plus a deterministic sample of the no-effect ones."""
        silent = tmr_defeat_map.silent_bits()
        effectful = [bit for bit in sorted(silent)
                     if tmr_defeat_map.predictions[bit].has_effect][:200]
        sampled = random.Random(7).sample(
            sorted(silent), min(100, len(silent)))
        bits = sorted(set(effectful) | set(sampled))
        config = CampaignConfig(workload_cycles=8)
        result = run_campaign(tiny_tmr_implementation, config,
                              fault_bits=bits, backend="serial")
        assert result.wrong_answers == 0
        assert all(entry.first_mismatch_cycle is None
                   for entry in result.results)

    def test_defeat_capable_covers_measured_wrong_bits(
            self, tiny_tmr_implementation, tmr_defeat_map):
        config = CampaignConfig(num_faults=250, workload_cycles=8)
        result = run_campaign(tiny_tmr_implementation, config,
                              backend="vector")
        wrong_bits = {entry.bit for entry in result.results
                      if entry.wrong_answer}
        assert wrong_bits, "campaign found no wrong answers to validate"
        assert wrong_bits <= tmr_defeat_map.defeat_capable_bits()
        validation = prediction_vs_campaign(tmr_defeat_map, result.results)
        assert validation["superset_holds"]
        assert validation["silent_sound"]

    def test_unprotected_wrong_bits_are_covered_too(
            self, tiny_fir_implementation, standard_defeat_map):
        config = CampaignConfig(num_faults=200, workload_cycles=8)
        result = run_campaign(tiny_fir_implementation, config,
                              backend="vector")
        wrong_bits = {entry.bit for entry in result.results
                      if entry.wrong_answer}
        assert wrong_bits
        assert wrong_bits <= standard_defeat_map.defeat_capable_bits()

    def test_cross_domain_bits_span_two_domains(self, tmr_defeat_map):
        crossing = tmr_defeat_map.cross_domain_bits()
        assert crossing
        for bit in crossing[:50]:
            assert len(tmr_defeat_map.predictions[bit].domains) >= 2
        assert 0.0 <= tmr_defeat_map.defeat_probability() <= 1.0

    def test_layout_robustness_replaces_uniform_proxy(
            self, tiny_tmr_implementation, tmr_defeat_map):
        layout_estimate = estimate_robustness(
            tiny_tmr_implementation.design,
            implementation=tiny_tmr_implementation)
        # Passing a definition the implementation does not implement is
        # rejected instead of silently analyzed.
        from repro.netlist import Netlist

        other = Netlist("other").get_library("work").add_definition("other")
        with pytest.raises(ValueError, match="implements"):
            estimate_robustness(other,
                                implementation=tiny_tmr_implementation)
        direct = layout_robustness(tiny_tmr_implementation,
                                   defeat_map=tmr_defeat_map)
        assert layout_estimate.cross_domain_defeat_probability == \
            pytest.approx(tmr_defeat_map.defeat_probability())
        assert direct.num_regions >= 3
        assert direct.voter_count > 0

    def test_map_is_memoized_per_implementation(self,
                                                tiny_tmr_implementation,
                                                tmr_defeat_map):
        again = defeat_map_for(tiny_tmr_implementation)
        assert again is tmr_defeat_map


class TestVectorizedAnalyzer:
    """The vectorized map build is prediction-identical to the flood.

    The closure/bitmask fast path rewrote the per-bit classification
    loop; these tests pin it to the original per-net flood propagation:
    the same prediction for every bit (classification, category,
    domains, barriers, reach, detail) and therefore the same per-class
    counts — so the prefilter and every robustness number are unchanged
    by the optimization.
    """

    def _assert_equivalent(self, implementation):
        flood = LayoutAnalyzer(implementation,
                               vectorize=False).build_map()
        vectorized = LayoutAnalyzer(implementation,
                                    vectorize=True).build_map()
        assert vectorized.predictions == flood.predictions
        assert vectorized.counts() == flood.counts()
        for cls in (SILENT, CORRECTABLE, DEFEAT):
            assert vectorized.counts()[cls] == flood.counts()[cls]

    def test_tmr_map_matches_flood(self, tiny_tmr_implementation):
        self._assert_equivalent(tiny_tmr_implementation)

    def test_unprotected_map_matches_flood(self, tiny_fir_implementation):
        self._assert_equivalent(tiny_fir_implementation)

    def test_unvoted_map_matches_flood(self, tiny_fir, tiny_tmr_suite):
        # The no-voter worst case exercises the antenna/LUT buckets with
        # no correctable class at all.
        from repro.fpga import device_by_name
        from repro.netlist import flatten
        from repro.pnr import implement

        netlist, _spec, _top, _components = tiny_fir
        flat = flatten(netlist, tiny_tmr_suite["p3_nv"].definition,
                       flat_name="fir_tiny_p3_nv_vec")
        implementation = implement(flat, device_by_name("XC2S50E"),
                                   anneal_moves_per_slice=2)
        self._assert_equivalent(implementation)

    def test_default_tracks_numpy_availability(self,
                                               tiny_tmr_implementation):
        from repro.analysis.layout import _np

        analyzer = LayoutAnalyzer(tiny_tmr_implementation)
        assert analyzer._vectorized == (_np is not None)
        # Requesting vectorization without numpy degrades to the flood
        # instead of failing, keeping the numpy-less environment green.
        forced = LayoutAnalyzer(tiny_tmr_implementation, vectorize=True)
        assert forced._vectorized == (_np is not None)


class TestStaticPrefilter:
    @pytest.fixture(scope="class")
    def reference(self, tiny_tmr_implementation):
        config = CampaignConfig(num_faults=220, workload_cycles=8)
        return run_campaign(tiny_tmr_implementation, config,
                            backend="serial")

    @pytest.mark.parametrize("backend", [
        "serial", "batch", "vector",
        pytest.param(ProcessPoolBackend(processes=2), id="process"),
    ])
    def test_verdict_identical_across_backends(self, backend, reference,
                                               tiny_tmr_implementation):
        config = CampaignConfig(num_faults=220, workload_cycles=8,
                                prefilter="static")
        result = run_campaign(tiny_tmr_implementation, config,
                              backend=backend)
        assert result.results == reference.results
        assert result.wrong_answers == reference.wrong_answers
        assert result.effect_table() == reference.effect_table()
        assert {name: (count.injected, count.wrong)
                for name, count in result.by_category.items()} == \
            {name: (count.injected, count.wrong)
             for name, count in reference.by_category.items()}
        assert result.skipped_silent > 0
        assert result.simulated == result.injected - result.skipped_silent
        assert result.prefilter == "static"

    @pytest.mark.parametrize("upset_model", ["mbu:2", "accumulate:3"])
    def test_verdict_identical_under_multibit_models(
            self, upset_model, tiny_tmr_implementation):
        base = CampaignConfig(num_faults=150, workload_cycles=8,
                              upset_model=upset_model)
        filtered = CampaignConfig(num_faults=150, workload_cycles=8,
                                  upset_model=upset_model,
                                  prefilter="static")
        reference = run_campaign(tiny_tmr_implementation, base,
                                 backend="vector")
        result = run_campaign(tiny_tmr_implementation, filtered,
                              backend="vector")
        assert result.results == reference.results
        assert result.effect_table() == reference.effect_table()

    def test_unknown_prefilter_rejected(self, tiny_tmr_implementation):
        config = CampaignConfig(num_faults=5, prefilter="psychic")
        with pytest.raises(ValueError, match="prefilter"):
            run_campaign(tiny_tmr_implementation, config)


class TestScenarioSurface:
    def test_new_scenarios_registered(self):
        from repro.scenarios import SCENARIOS

        assert "defeat-map-fir" in SCENARIOS
        assert "prediction-vs-campaign" in SCENARIOS
        scenario = SCENARIOS["prediction-vs-campaign"]
        # The validation campaign must be independent of the prediction
        # it validates, so it runs unprefiltered.
        assert scenario.prefilter == "none"
        assert "prediction_vs_campaign" in scenario.analyses

    def test_bad_prefilter_fails_fast(self):
        import dataclasses

        from repro.scenarios import SCENARIOS, run_scenario

        broken = dataclasses.replace(SCENARIOS["table3-fir"],
                                     prefilter="psychic")
        with pytest.raises(ValueError, match="prefilter"):
            run_scenario(broken)

    def test_analyses_registered(self):
        from repro.pipeline import ANALYSES

        assert "defeat_map" in ANALYSES
        assert "prediction_vs_campaign" in ANALYSES
