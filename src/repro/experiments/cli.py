"""Shared argparse plumbing for the experiment drivers and ``python -m repro``.

Before the pipeline engine every table/figure driver carried its own copy of
the ``--scale`` / ``--backend`` / ``--flow-cache`` / ``--jobs`` argument
definitions; this module is their single home.  The drivers and the
``python -m repro`` scenario CLI all build their parsers from these helpers,
so a new knob (e.g. the ``--upset-model`` axis) appears everywhere at once.
"""

from __future__ import annotations

import argparse
import os
from typing import Optional

from ..faults.engine import BACKEND_CHOICES
from .designs import SCALES


def add_scale_argument(parser: argparse.ArgumentParser,
                       default: Optional[str] = "fast") -> None:
    """``--scale``: the experiment scale (filter size + device profiles)."""
    parser.add_argument(
        "--scale", default=default, choices=tuple(SCALES),
        help="experiment scale"
             + (f" (default: {default})" if default else
                " (default: the scenario's)"))


def add_backend_argument(parser: argparse.ArgumentParser,
                         default: Optional[str] = "serial") -> None:
    """``--backend``: the campaign execution backend."""
    parser.add_argument(
        "--backend", default=default, choices=BACKEND_CHOICES,
        help="campaign execution backend"
             + (f" (default: {default})" if default else
                " (default: the scenario's)"))


def _upset_model_spec(value: str) -> str:
    """Validate an upset-model spec at parse time (fail before any P&R)."""
    from ..faults.upsets import resolve_upset_model

    try:
        resolve_upset_model(value)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None
    return value


def add_upset_model_argument(parser: argparse.ArgumentParser,
                             default: Optional[str] = "single") -> None:
    """``--upset-model``: bits flipped per injection (single / mbu / ...)."""
    parser.add_argument(
        "--upset-model", default=default, metavar="MODEL",
        type=_upset_model_spec,
        help="upset model: 'single', 'mbu[:cluster]' or "
             "'accumulate[:interval]'"
             + (f" (default: {default})" if default else
                " (default: the scenario's)"))


def add_prefilter_argument(parser: argparse.ArgumentParser,
                           default: Optional[str] = "none") -> None:
    """``--prefilter``: skip provably-silent bits before simulation."""
    from ..faults.campaign import PREFILTER_CHOICES

    parser.add_argument(
        "--prefilter", default=default, choices=PREFILTER_CHOICES,
        help="campaign prefilter: 'static' skips bits the layout "
             "analyzer proves silent (verdicts stay bit-identical)"
             + (f" (default: {default})" if default else
                " (default: the scenario's)"))


def add_faults_argument(parser: argparse.ArgumentParser) -> None:
    """``--faults``: upsets injected per design (scale default otherwise)."""
    parser.add_argument(
        "--faults", type=int, default=None,
        help="upsets to inject per design (default: scale dependent)")


def add_flow_arguments(parser: argparse.ArgumentParser) -> None:
    """The implementation-flow knobs shared by every experiment CLI."""
    parser.add_argument(
        "--flow-cache", metavar="DIR",
        default=os.environ.get("REPRO_FLOW_CACHE"),
        help="persistent flow-artifact directory; place-and-route results "
             "are stored there and reused by later runs (default: the "
             "REPRO_FLOW_CACHE environment variable, else disabled)")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="implement the suite designs in N parallel worker processes "
             "(default: 1)")
    parser.add_argument(
        "--partitions", type=int, default=1, metavar="P",
        help="annealer partition count (result-determining flow knob; "
             "1 = the classic single-stream annealer, default)")
    parser.add_argument(
        "--flow-threads", type=int, default=None, metavar="N",
        help="worker threads for the partitioned annealer's region sweeps "
             "(execution-only; results are identical for any value; "
             "default: the REPRO_FLOW_THREADS environment variable, "
             "else 1)")


def add_json_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of text")


def experiment_parser(description: Optional[str],
                      scale_default: str = "fast",
                      backend_default: Optional[str] = "serial",
                      faults: bool = False,
                      upset_model: bool = False,
                      prefilter: bool = False,
                      json_flag: bool = True,
                      ) -> argparse.ArgumentParser:
    """A parser with the standard experiment surface pre-populated.

    ``--backend`` (and optionally ``--faults`` / ``--upset-model`` /
    ``--prefilter``) are added when the driver runs campaigns;
    ``--flow-cache`` / ``--jobs`` are always present and ``--json`` unless
    the driver has no text mode.
    """
    parser = argparse.ArgumentParser(description=description)
    add_scale_argument(parser, default=scale_default)
    if backend_default is not None:
        add_backend_argument(parser, default=backend_default)
    if faults:
        add_faults_argument(parser)
    if upset_model:
        add_upset_model_argument(parser)
    if prefilter:
        add_prefilter_argument(parser)
    add_flow_arguments(parser)
    if json_flag:
        add_json_argument(parser)
    return parser
