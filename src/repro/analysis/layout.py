"""Layout-aware dependability analysis of implemented TMR designs.

The paper's central claim is that TMR defeat is a property of the *routed
layout*: a single configuration upset only defeats the voting when the
wrong values it creates reach one voter barrier from two redundant domains
at once.  The analytical model in :mod:`repro.core.analysis` approximates
that over the unplaced netlist with a uniform-net assumption; this module
computes it exactly for one implemented design by walking the routed
implementation — the :class:`~repro.faults.models.FaultModeler`'s
bit-to-overlay mapping over the :class:`~repro.fpga.config.ConfigLayout`,
the route trees and the compiled netlist.

For every configuration bit of the fault list the
:class:`LayoutAnalyzer` answers "where can this upset's effect go?" by
propagating a taint from the overlay's entry nets through the compiled
design.  Voter LUTs *absorb* the taint (a majority voter with at most one
corrupted input provably outputs the golden value, and the simulator's
three-valued LUT evaluation honours that even for unknowns); flip-flops
propagate it; output ports observe it.  The propagation yields one of
three static verdicts per bit:

* **silent** — the overlay is empty, or its taint dead-ends before any
  output port and before any voter (the fault cone provably contains no
  observable net).  Campaigns may skip these bits outright: the
  ``prefilter="static"`` knob of
  :class:`~repro.faults.campaign.CampaignConfig` synthesizes their
  verdicts instead of simulating them.
* **single-domain-correctable** — the taint reaches voter barriers, but
  every voter sees at most one corrupted input; the redundancy is
  predicted to out-vote the upset.
* **cross-domain-defeat-capable** — the taint reaches an output port
  without passing a voter (this includes every observable upset of the
  unprotected design and upsets past the final output voter), or some
  voter sees corrupted values on two or more inputs (the Figure 1 "upset
  b" mechanism: one routing short corrupting two domains inside the same
  voter region).

The defeat-capable set is a *superset* of the bits that can produce wrong
answers — the ``prediction-vs-campaign`` scenario cross-validates that
against measured campaigns — and the silent set is *sound*: a bit
predicted silent can never produce an output mismatch.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, \
    Set, Tuple

from ..core.analysis import RobustnessEstimate, compute_voter_regions, \
    domain_of_net
from ..core.tmr import DOMAIN_SUFFIXES
from ..core.voters import VOTED_NET_PROPERTY, VOTER_PROPERTY, is_voter
from ..faults.fault_list import FaultList, FaultListManager
from ..faults.models import FaultEffect, FaultModeler
from ..pnr.flow import Implementation
from ..sim.compile import CompiledDesign

#: Static per-bit verdicts of the layout analyzer.
SILENT = "silent"
CORRECTABLE = "single-domain-correctable"
DEFEAT = "cross-domain-defeat-capable"
CLASSIFICATIONS = (SILENT, CORRECTABLE, DEFEAT)


@dataclasses.dataclass(frozen=True)
class BitPrediction:
    """The static classification of one configuration bit."""

    bit: int
    resource_kind: str
    category: str
    classification: str
    has_effect: bool
    detail: str
    #: redundant domains that can carry a wrong value under this upset
    domains: Tuple[int, ...] = ()
    #: canonical voter barriers ("role:voted_net") the taint reaches
    barriers: Tuple[str, ...] = ()
    #: whether the taint reaches an output port without passing a voter
    reaches_output: bool = False

    @property
    def is_silent(self) -> bool:
        return self.classification == SILENT

    @property
    def is_defeat_capable(self) -> bool:
        return self.classification == DEFEAT


@dataclasses.dataclass
class DefeatMap:
    """Per-design static defeat map: one prediction per fault-list bit."""

    design: str
    mode: str
    predictions: Dict[int, BitPrediction]

    def __len__(self) -> int:
        return len(self.predictions)

    def classification_of(self, bit: int) -> Optional[str]:
        prediction = self.predictions.get(bit)
        return prediction.classification if prediction is not None else None

    def is_silent(self, bit: int) -> bool:
        """True only for bits *proved* silent (unknown bits are not)."""
        prediction = self.predictions.get(bit)
        return prediction is not None and prediction.is_silent

    def bits_of_class(self, classification: str) -> List[int]:
        return sorted(bit for bit, prediction in self.predictions.items()
                      if prediction.classification == classification)

    def silent_bits(self) -> FrozenSet[int]:
        return frozenset(self.bits_of_class(SILENT))

    def defeat_capable_bits(self) -> FrozenSet[int]:
        return frozenset(self.bits_of_class(DEFEAT))

    def counts(self) -> Dict[str, int]:
        counts = {classification: 0 for classification in CLASSIFICATIONS}
        for prediction in self.predictions.values():
            counts[prediction.classification] += 1
        return counts

    def cross_domain_bits(self) -> List[int]:
        """Bits whose effect can corrupt two or more redundant domains."""
        return sorted(bit for bit, prediction in self.predictions.items()
                      if len(prediction.domains) >= 2)

    def defeat_probability(self) -> float:
        """Fraction of domain-crossing upsets predicted to defeat the TMR.

        The layout-aware analogue of
        :meth:`~repro.core.analysis.VoterRegionReport.same_region_collision_probability`:
        among the fault-list bits that corrupt signals of two or more
        redundant domains at once, the share whose corruptions meet at a
        common voter barrier (or escape voting entirely).
        """
        crossing = self.cross_domain_bits()
        if not crossing:
            return 0.0
        defeats = sum(
            1 for bit in crossing
            if self.predictions[bit].classification == DEFEAT)
        return defeats / len(crossing)

    def summary(self) -> Dict[str, object]:
        """JSON-serializable digest for reports and the analyze stage."""
        by_category: Dict[str, Dict[str, int]] = {}
        for prediction in self.predictions.values():
            bucket = by_category.setdefault(
                prediction.category,
                {classification: 0 for classification in CLASSIFICATIONS})
            bucket[prediction.classification] += 1
        return {
            "design": self.design,
            "fault_list_mode": self.mode,
            "bits": len(self.predictions),
            "classes": self.counts(),
            "by_category": by_category,
            "cross_domain_bits": len(self.cross_domain_bits()),
            "layout_defeat_probability": round(self.defeat_probability(), 5),
        }


@dataclasses.dataclass(frozen=True)
class _TaintSummary:
    """Forward closure of one seed net, with voters absorbing."""

    #: redundant domains of the tainted nets (None filtered out)
    domains: FrozenSet[int]
    #: (voter gate index, tainted input net) pairs where the taint stopped
    voter_hits: FrozenSet[Tuple[int, int]]
    #: whether an output port net was tainted (no voter in between)
    reaches_output: bool


class LayoutAnalyzer:
    """Classifies configuration bits of one implemented design.

    The analyzer cross-references the implementation's fault models with
    the compiled netlist: per bit it derives the overlay's *entry nets*
    (the first nets that can carry a wrong value), pushes a taint through
    gates and flip-flops — voter LUTs absorb it, recording which inputs
    arrived corrupted — and classifies the bit by what the taint reached.

    *effect_lookup* lets callers share a memoized
    :meth:`~repro.faults.models.FaultModeler.effect_of_bit` (for example
    the campaign cache's), so building the map also warms the per-bit
    effect cache the campaign engine reads.
    """

    def __init__(self, implementation: Implementation,
                 compiled: Optional[CompiledDesign] = None,
                 modeler: Optional[FaultModeler] = None,
                 effect_lookup: Optional[Callable[[int], FaultEffect]] = None
                 ) -> None:
        self.implementation = implementation
        self.compiled = compiled if compiled is not None else \
            CompiledDesign(implementation.design)
        self.modeler = modeler if modeler is not None else \
            FaultModeler(implementation, self.compiled)
        self._effect_of_bit = effect_lookup if effect_lookup is not None \
            else self.modeler.effect_of_bit
        self._build_structure()
        self._taint_memo: Dict[int, _TaintSummary] = {}

    # ------------------------------------------------------------------
    def _build_structure(self) -> None:
        compiled = self.compiled
        definition = self.implementation.design

        self._net_domain: List[Optional[int]] = [None] * compiled.num_nets
        for name, index in compiled.net_index.items():
            net = definition.nets.get(name)
            if net is not None:
                self._net_domain[index] = domain_of_net(net)

        self._net_sink_gates: Dict[int, List[int]] = {}
        self._net_sink_ffs: Dict[int, List[int]] = {}
        for gate in compiled.gates:
            for net in gate.input_nets:
                if net >= 0:
                    self._net_sink_gates.setdefault(net, []).append(
                        gate.index)
        for flip_flop in compiled.flip_flops:
            for net in (flip_flop.d_net, flip_flop.ce_net,
                        flip_flop.reset_net):
                if net >= 0:
                    self._net_sink_ffs.setdefault(net, []).append(
                        flip_flop.index)

        self._voter_gates: Dict[int, str] = {}
        for gate in compiled.gates:
            instance = gate.instance
            if instance is not None and is_voter(instance):
                self._voter_gates[gate.index] = _barrier_key(instance)

        self._output_nets: Set[int] = set()
        for binding in compiled.outputs.values():
            self._output_nets.update(net for net in binding.net_indices
                                     if net >= 0)

    # ------------------------------------------------------------------
    def _taint_of_net(self, seed: int) -> _TaintSummary:
        """Memoized forward closure of one net (voters absorb).

        Closures are unions over seeds, so multi-net entries combine the
        per-net memos instead of re-walking the graph.
        """
        memo = self._taint_memo.get(seed)
        if memo is not None:
            return memo
        tainted: Set[int] = set()
        voter_hits: Set[Tuple[int, int]] = set()
        reaches_output = False
        stack = [seed]
        gates = self.compiled.gates
        flip_flops = self.compiled.flip_flops
        while stack:
            net = stack.pop()
            if net in tainted:
                continue
            tainted.add(net)
            if net in self._output_nets:
                reaches_output = True
            for gate_index in self._net_sink_gates.get(net, ()):
                if gate_index in self._voter_gates:
                    voter_hits.add((gate_index, net))
                    continue  # the majority voter absorbs a single taint
                out = gates[gate_index].output_net
                if out >= 0 and out not in tainted:
                    stack.append(out)
            for ff_index in self._net_sink_ffs.get(net, ()):
                q_net = flip_flops[ff_index].q_net
                if q_net >= 0 and q_net not in tainted:
                    stack.append(q_net)
        domains = frozenset(domain for domain in
                            (self._net_domain[net] for net in tainted)
                            if domain is not None)
        memo = _TaintSummary(domains, frozenset(voter_hits), reaches_output)
        self._taint_memo[seed] = memo
        return memo

    # ------------------------------------------------------------------
    def _entry_nets(self, effect: FaultEffect
                    ) -> Tuple[Set[int], Set[Tuple[int, int]]]:
        """Nets that first carry a wrong value, plus direct voter-pin hits.

        An override on a voter's *input pin* corrupts only what that voter
        reads — the voter may still absorb it — so it is recorded as a
        ``(voter gate, input position)`` hit instead of tainting the
        voter's output.  An override of the voter's own truth table breaks
        the voter itself and taints its output.
        """
        overlay = effect.overlay
        gates = self.compiled.gates
        flip_flops = self.compiled.flip_flops
        entries: Set[int] = set()
        voter_pin_hits: Set[Tuple[int, int]] = set()

        for gate_index in overlay.lut_init_overrides:
            out = gates[gate_index].output_net
            if out >= 0:
                entries.add(out)
        for (gate_index, position) in overlay.gate_pin_overrides:
            if gate_index in self._voter_gates:
                voter_pin_hits.add((gate_index, position))
                continue
            out = gates[gate_index].output_net
            if out >= 0:
                entries.add(out)
        for (ff_index, _port) in overlay.ff_pin_overrides:
            q_net = flip_flops[ff_index].q_net
            if q_net >= 0:
                entries.add(q_net)
        for ff_index in overlay.ff_init_overrides:
            q_net = flip_flops[ff_index].q_net
            if q_net >= 0:
                entries.add(q_net)
        for net in overlay.net_overrides:
            if net >= 0:
                entries.add(net)
        return entries, voter_pin_hits

    # ------------------------------------------------------------------
    def classify_effect(self, effect: FaultEffect) -> BitPrediction:
        overlay = effect.overlay
        resource_kind = effect.resource[0]
        if not effect.has_effect:
            return BitPrediction(
                bit=effect.bit, resource_kind=resource_kind,
                category=effect.category, classification=SILENT,
                has_effect=False, detail=effect.detail)

        entries, voter_pin_hits = self._entry_nets(effect)
        domains: Set[int] = set()
        voter_hits: Set[Tuple[int, int]] = set()
        reaches_output = bool(overlay.output_pin_overrides)
        for entry in sorted(entries):
            summary = self._taint_of_net(entry)
            domains.update(summary.domains)
            voter_hits.update(summary.voter_hits)
            reaches_output = reaches_output or summary.reaches_output

        # Count *distinct corrupted input positions* per voter: a taint
        # arriving on input net N and a pin override of the position that
        # reads N are the same corrupted leg, not two.
        corrupted_positions: Dict[int, Set[int]] = {}
        for (gate_index, net) in voter_hits:
            inputs = self.compiled.gates[gate_index].input_nets
            positions = corrupted_positions.setdefault(gate_index, set())
            positions.update(position for position, input_net
                             in enumerate(inputs) if input_net == net)
        for (gate_index, position) in voter_pin_hits:
            corrupted_positions.setdefault(gate_index, set()).add(position)

        # A voter input position carries one redundant domain's copy.
        for positions in corrupted_positions.values():
            domains.update(position for position in positions
                           if position < 3)

        defeated_voters = [gate_index for gate_index, positions
                           in corrupted_positions.items()
                           if len(positions) >= 2]
        barriers = tuple(sorted({self._voter_gates[gate_index]
                                 for gate_index in corrupted_positions}))

        if reaches_output or defeated_voters:
            classification = DEFEAT
        elif corrupted_positions:
            classification = CORRECTABLE
        else:
            # The taint dead-ended: no output, no voter — provably silent.
            classification = SILENT
        return BitPrediction(
            bit=effect.bit, resource_kind=resource_kind,
            category=effect.category, classification=classification,
            has_effect=True, detail=effect.detail,
            domains=tuple(sorted(domains)), barriers=barriers,
            reaches_output=reaches_output)

    def classify_bit(self, bit: int) -> BitPrediction:
        return self.classify_effect(self._effect_of_bit(bit))

    # ------------------------------------------------------------------
    def build_map(self, fault_list: Optional[FaultList] = None,
                  mode: str = "design") -> DefeatMap:
        """Classify every bit of *fault_list* (built on demand)."""
        if fault_list is None:
            fault_list = FaultListManager(self.implementation).build(mode)
        predictions = {bit: self.classify_bit(bit)
                       for bit in fault_list.bits}
        return DefeatMap(design=self.implementation.design.name,
                         mode=fault_list.mode, predictions=predictions)


def _barrier_key(instance) -> str:
    """Domain-invariant identity of a voter barrier.

    The three per-domain voter LUTs of one barrier share the original
    (pre-TMR) net they vote, so corruptions of different domains arriving
    at "the same barrier" compare equal under this key.
    """
    role = instance.properties.get(VOTER_PROPERTY, "voter")
    voted = instance.properties.get(VOTED_NET_PROPERTY)
    if voted is not None:
        return f"{role}:{voted}"
    name = instance.name
    for suffix in DOMAIN_SUFFIXES:
        name = name.replace(suffix, "_tr*")
    return f"{role}:{name}"


# ----------------------------------------------------------------------
# Map construction with campaign-cache memoization
# ----------------------------------------------------------------------
def defeat_map_for(implementation: Implementation,
                   mode: str = "design",
                   compiled: Optional[CompiledDesign] = None,
                   modeler: Optional[FaultModeler] = None,
                   effect_lookup: Optional[Callable[[int], FaultEffect]]
                   = None,
                   use_cache: bool = True) -> DefeatMap:
    """The (memoized) static defeat map of one implemented design.

    With *use_cache* the map is stored in the process-wide campaign cache
    next to the golden traces and fault effects, so repeated campaigns —
    and the ``prefilter="static"`` knob — classify each design once.
    """
    if use_cache:
        from ..faults.cache import get_cache
        from ..service.tier import active_tier

        cache = get_cache()
        entry = cache.entry_for(implementation)

        def build() -> DefeatMap:
            # Building the map dominates prefiltered campaigns, so an
            # in-memory miss reads through the persistent tier first: a
            # map built by any earlier process over a bit-identical
            # implementation is exactly this one.
            tier = active_tier()
            if tier is not None:
                stored = tier.load_defeat_map(entry.fingerprint, mode)
                if stored is not None:
                    return stored
            analyzer = LayoutAnalyzer(implementation, compiled=compiled,
                                      modeler=modeler,
                                      effect_lookup=effect_lookup)
            fault_list = entry.fault_list(mode, cache.stats)
            defeat_map = analyzer.build_map(fault_list)
            if tier is not None:
                tier.store_defeat_map(entry.fingerprint, mode, defeat_map)
            return defeat_map

        return entry.defeat_map(mode, build, cache.stats)
    analyzer = LayoutAnalyzer(implementation, compiled=compiled,
                              modeler=modeler, effect_lookup=effect_lookup)
    return analyzer.build_map(mode=mode)


# ----------------------------------------------------------------------
# Layout-aware robustness estimate
# ----------------------------------------------------------------------
def layout_robustness(implementation: Implementation,
                      domain: int = 0,
                      defeat_map: Optional[DefeatMap] = None,
                      use_cache: bool = True) -> RobustnessEstimate:
    """A :class:`~repro.core.analysis.RobustnessEstimate` from the layout.

    Replaces the uniform-net collision proxy with the measured share of
    domain-crossing fault-list bits whose corruptions meet at a common
    voter barrier (or bypass voting), and reads region/voter counts from
    the implemented flat netlist instead of the component-level one.
    """
    if defeat_map is None:
        defeat_map = defeat_map_for(implementation, use_cache=use_cache)
    definition = implementation.design
    regions = compute_voter_regions(definition, domain)
    voter_count = sum(1 for instance in definition.instances.values()
                      if is_voter(instance))
    return RobustnessEstimate(
        cross_domain_defeat_probability=defeat_map.defeat_probability(),
        num_regions=regions.num_regions,
        voter_count=voter_count,
        nets_per_domain=sum(regions.region_sizes.values()),
    )


def prediction_vs_campaign(defeat_map: DefeatMap,
                           campaign_results: Sequence
                           ) -> Dict[str, object]:
    """Cross-validate the static map against one measured campaign.

    The defeat-capable set must cover every bit that measured a wrong
    answer (``superset_holds``); silent predictions must never have
    measured one (``silent_sound``).  *campaign_results* is the
    ``results`` list of a :class:`~repro.faults.campaign.CampaignResult`.
    """
    measured_wrong: Set[int] = set()
    measured_silent_violations: List[int] = []
    injected_bits: Set[int] = set()
    for result in campaign_results:
        injected_bits.add(result.bit)
        if result.wrong_answer:
            measured_wrong.add(result.bit)
            if defeat_map.is_silent(result.bit):
                measured_silent_violations.append(result.bit)
    predicted_defeat = defeat_map.defeat_capable_bits()
    uncovered = sorted(measured_wrong - predicted_defeat)
    predicted_in_sample = predicted_defeat & injected_bits
    return {
        "injected_bits": len(injected_bits),
        "measured_wrong_bits": len(measured_wrong),
        "predicted_defeat_capable_in_sample": len(predicted_in_sample),
        "superset_holds": not uncovered,
        "uncovered_wrong_bits": uncovered[:20],
        "silent_sound": not measured_silent_violations,
        "silent_violations": sorted(measured_silent_violations)[:20],
        # How sharp the static prediction is: of the injected bits it
        # flagged defeat-capable, the share that measured wrong.
        "precision": round(len(measured_wrong & predicted_in_sample)
                           / len(predicted_in_sample), 4)
        if predicted_in_sample else None,
        "layout_defeat_probability":
            round(defeat_map.defeat_probability(), 5),
    }
