"""Behavioural evaluation of primitive cells for the logic simulator.

The simulator calls :func:`combinational_output` for LUTs, buffers and
constants, and :func:`sequential_next_state` for flip-flops at the clock
edge.  All functions operate on three-valued logic from
:mod:`repro.cells.logic`.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..netlist.ir import Instance
from . import logic
from .library import FF_CELLS, LUT_CELLS, lut_input_count

#: Default INIT used if a LUT instance is missing one (a buffer of I0).
DEFAULT_LUT_INIT = 2  # O = I0 for a LUT1; harmless for larger LUTs


def lut_init_of(instance: Instance) -> int:
    """Return the INIT property of a LUT instance (0 if unset)."""
    init = instance.properties.get("INIT", 0)
    if isinstance(init, str):
        init = int(init, 0)
    return int(init)


def combinational_output(instance: Instance,
                         inputs: Mapping[str, int]) -> Optional[int]:
    """Evaluate the single output of a combinational primitive.

    *inputs* maps port names (e.g. ``"I0"``) to logic values.  Returns the
    output value, or ``None`` if the cell is sequential (handled elsewhere).
    """
    cell = instance.reference.name
    if cell in FF_CELLS:
        return None
    if cell == "GND":
        return logic.ZERO
    if cell == "VCC":
        return logic.ONE
    if cell in ("IBUF", "OBUF", "BUFG"):
        return inputs.get("I", logic.UNKNOWN)
    if cell in LUT_CELLS:
        count = lut_input_count(cell)
        values = [inputs.get(f"I{i}", logic.UNKNOWN) for i in range(count)]
        return logic.lut_eval(lut_init_of(instance), values, count)
    raise ValueError(f"cannot evaluate unknown cell type {cell!r}")


def output_port_of(cell_name: str) -> str:
    """Name of the (single) output port of a primitive."""
    if cell_name == "GND":
        return "G"
    if cell_name == "VCC":
        return "P"
    if cell_name in FF_CELLS:
        return "Q"
    return "O"


def sequential_next_state(instance: Instance, inputs: Mapping[str, int],
                          current_state: int) -> int:
    """Compute the next Q of a flip-flop at an active clock edge.

    The clock itself is handled by the simulator (it decides when an edge
    happened); this function applies clock-enable and reset semantics.
    """
    cell = instance.reference.name
    if cell not in FF_CELLS:
        raise ValueError(f"{cell!r} is not a flip-flop")

    data = inputs.get("D", logic.UNKNOWN)
    enable = inputs.get("CE", logic.ONE)
    if cell == "FD":
        return data
    if cell == "FDR":
        reset = inputs.get("R", logic.ZERO)
        if reset == logic.ONE:
            return logic.ZERO
        if reset == logic.UNKNOWN:
            return logic.UNKNOWN
        return data
    if cell == "FDRE":
        reset = inputs.get("R", logic.ZERO)
        if reset == logic.ONE:
            return logic.ZERO
        if reset == logic.UNKNOWN:
            return logic.UNKNOWN
        return logic.mux(enable, current_state, data)
    if cell == "FDCE":
        # Asynchronous clear is applied by the simulator whenever CLR is
        # high; at the clock edge it simply wins over the data.
        clear = inputs.get("CLR", logic.ZERO)
        if clear == logic.ONE:
            return logic.ZERO
        if clear == logic.UNKNOWN:
            return logic.UNKNOWN
        return logic.mux(enable, current_state, data)
    raise AssertionError(f"unhandled flip-flop {cell}")


def asynchronous_state(instance: Instance, inputs: Mapping[str, int],
                       current_state: int) -> int:
    """Apply level-sensitive (asynchronous) behaviour between clock edges."""
    cell = instance.reference.name
    if cell == "FDCE":
        clear = inputs.get("CLR", logic.ZERO)
        if clear == logic.ONE:
            return logic.ZERO
    return current_state


def initial_state(instance: Instance) -> int:
    """Power-up / configuration value of a flip-flop (the INIT bit)."""
    init = instance.properties.get("FF_INIT", 0)
    if isinstance(init, str):
        init = int(init, 0)
    init = int(init) & 1
    return logic.ONE if init else logic.ZERO
