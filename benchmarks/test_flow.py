"""Benchmark: implementation-flow throughput (seed flow vs fast flow).

Measures, per suite design, the seed place-and-route flow (the tuple-based
PathFinder router, swap-and-recompute annealer and linear-scan bit
accounting preserved in :mod:`repro.pnr.reference`) against

* the **cold** fast flow — integer-indexed routing graph, incremental
  annealing, memoized PIP tables, nothing on disk yet, and
* the **warm** flow — a second run served entirely from the persistent
  flow-artifact store.

The numbers land in ``BENCH_flow.json`` at the repository root (per-design
seconds, route-iteration counts, totals and speedups) so the flow's
performance trajectory is tracked across PRs;
``benchmarks/check_regression.py`` gates CI on the normalized speedups.
Every measured implementation is also asserted bit-identical across the
three flows — the benchmark doubles as the suite-scale golden-equivalence
test.

Two further sections land in the same file:

* ``parallel_cold`` — the cold suite flow at ``threads=1`` vs
  ``threads=N`` (process-parallel across designs, thread-scheduled
  region sweeps within one), asserted bit-identical across thread
  counts at fixed seed.  The ≥2.5x speedup gate only applies on
  multi-core machines (``cpu_count`` is recorded with the numbers).
* ``defeat_map_build`` — the vectorized defeat-map build vs the python
  taint flood, asserted prediction-identical (including per-class
  counts), with the speedup over the *committed* flood baselines held
  to an absolute floor.

Knobs: ``REPRO_BENCH_SCALE`` selects the suite scale (see conftest);
``REPRO_BENCH_FLOW_MIN_SPEEDUP`` / ``REPRO_BENCH_FLOW_WARM_MIN_SPEEDUP``
/ ``REPRO_BENCH_FLOW_PARALLEL_MIN_SPEEDUP`` /
``REPRO_BENCH_FLOW_MAP_MIN_SPEEDUP`` relax the local acceptance bars on
noisy shared runners; ``REPRO_BENCH_FLOW_THREADS`` sets the parallel
leg's thread/worker count.
"""

import gc
import json
import os
import time

from repro.analysis.layout import LayoutAnalyzer
from repro.analysis.layout import _np as _layout_numpy
from repro.experiments import DESIGN_ORDER, device_for
from repro.experiments.designs import implement_design_suite
from repro.fpga.bitgen import generate_bitstream
from repro.fpga.config import ConfigLayout, clear_layout_cache
from repro.fpga.routing import clear_routing_graph_cache
from repro.pnr import FlowArtifactStore, estimate_timing, implement, pack
from repro.pnr.reference import (reference_bit_stats, reference_place,
                                 reference_route_design)

#: Required cold-flow speedup over the seed flow (locally ~2.5x; shared CI
#: runners relax the bar via the env knob, the regression gate compares
#: normalized speedups instead).
MIN_COLD_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_FLOW_MIN_SPEEDUP", "2.0"))

#: Required warm (cache-hit) speedup over the seed flow: a hit unpickles
#: an artifact instead of placing and routing, locally 30x+.
MIN_WARM_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_FLOW_WARM_MIN_SPEEDUP", "10.0"))

#: Workers for the parallel cold leg (process-parallel across designs,
#: thread-scheduled region sweeps inside one design).
FLOW_THREADS = int(os.environ.get("REPRO_BENCH_FLOW_THREADS", "4"))

#: Required cold-suite speedup of threads=N over threads=1 — applied
#: only on machines with at least two cores (a single-core container
#: can only lose to pool overhead; the identity assertions still run).
MIN_PARALLEL_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_FLOW_PARALLEL_MIN_SPEEDUP", "2.5"))

#: Required defeat-map build speedup over the *committed* python flood
#: (the per-design ``defeat_map_seconds`` of BENCH_predict.json before
#: the vectorized build landed, measured on the same reference
#: container as every committed baseline).
MIN_MAP_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_FLOW_MAP_MIN_SPEEDUP", "5.0"))

#: The committed python-flood build seconds (BENCH_predict.json as of
#: the PR that introduced the vectorized build).  Machine-specific like
#: every committed baseline; the in-run flood-vs-vectorized ratio next
#: to them stays portable.
COMMITTED_FLOOD_SECONDS = {
    "standard": 0.2421,
    "TMR_p2": 1.7964,
    "TMR_p3_nv": 1.0619,
}

#: written into the session's ``bench_out_dir`` (committed baselines are
#: only overwritten under ``--update-baselines``)
BENCH_NAME = "BENCH_flow.json"


def _seed_implement(suite, name):
    """The seed flow, stage by stage, on fresh per-design caches."""
    definition = suite.flat[name]
    device = device_for(suite, name)
    packed = pack(definition)
    placement = reference_place(
        definition, packed, device, seed=1,
        anneal_moves_per_slice=suite.scale.anneal_moves_per_slice)
    routing = reference_route_design(definition, packed, placement, device,
                                     max_iterations=20)
    timing = estimate_timing(definition, placement)
    layout = ConfigLayout(device)  # the seed built a fresh layout per design
    bitstream, resources, layout = generate_bitstream(
        definition, device, packed, placement, routing, layout)
    stats = reference_bit_stats(device, layout, resources.lut_sites,
                                resources.ff_sites, resources.used_slices,
                                routing)
    assert stats == resources.stats
    return {
        "placement": placement,
        "routing": routing,
        "timing": timing,
        "bitstream": bitstream,
        "stats": stats,
    }


def _fast_implement(suite, name, store):
    definition = suite.flat[name]
    device = device_for(suite, name)
    return implement(
        definition, device, seed=1,
        anneal_moves_per_slice=suite.scale.anneal_moves_per_slice,
        artifact_store=store)


def _timed(thunk):
    start = time.perf_counter()
    value = thunk()
    return value, time.perf_counter() - start


def _merge_sections(bench_out_dir, updates):
    """Merge *updates* into the session's BENCH_flow.json.

    The three flow benchmarks write disjoint top-level sections of one
    report; pytest runs them in file order, so the throughput test lays
    the base payload down first and the later sections graft onto it.
    """
    path = bench_out_dir / BENCH_NAME
    payload = json.loads(path.read_text()) if path.exists() else {}
    payload.update(updates)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_flow_throughput(benchmark, design_suite, tmp_path_factory,
                         bench_out_dir):
    suite = design_suite
    store = FlowArtifactStore(tmp_path_factory.mktemp("flow-artifacts"))

    seed_results = {}
    seed_seconds = {}
    for name in DESIGN_ORDER:
        seed_results[name], seed_seconds[name] = _timed(
            lambda name=name: _seed_implement(suite, name))

    # Cold: empty artifact store, no memoized routing graphs or layouts.
    clear_routing_graph_cache()
    clear_layout_cache()
    cold_results = {}
    cold_seconds = {}
    for name in DESIGN_ORDER:
        cold_results[name], cold_seconds[name] = _timed(
            lambda name=name: _fast_implement(suite, name, store))
    assert store.stats.misses == len(DESIGN_ORDER)
    assert store.stats.stores == len(DESIGN_ORDER)

    # Warm: every design served from the on-disk store.  A collection
    # pause landing inside a millisecond-scale cache-hit measurement
    # once produced a phantom warm>cold anomaly in the committed
    # baselines (TMR_p3_nv), so each warm run is timed with the
    # collector quiesced, and the store hit is asserted per design —
    # a design silently missing the store can never hide in the totals
    # again.
    warm_results = {}
    warm_seconds = {}
    for name in DESIGN_ORDER:
        hits_before = store.stats.hits
        misses_before = store.stats.misses
        gc.collect()
        gc.disable()
        try:
            warm_results[name], warm_seconds[name] = _timed(
                lambda name=name: _fast_implement(suite, name, store))
        finally:
            gc.enable()
        assert store.stats.hits == hits_before + 1, \
            f"{name}: warm run missed the flow store"
        assert store.stats.misses == misses_before, \
            f"{name}: warm run recorded a store miss"
    assert store.stats.hits == len(DESIGN_ORDER)

    # A warm (unpickling) run must never cost more than the cold flow
    # it replaces — for every design, not just in aggregate.
    for name in DESIGN_ORDER:
        assert warm_seconds[name] <= cold_seconds[name], \
            (f"{name}: warm {warm_seconds[name]:.4f}s exceeded cold "
             f"{cold_seconds[name]:.4f}s")

    # Suite-scale golden equivalence: seed == cold == warm, bit for bit.
    for name in DESIGN_ORDER:
        seed = seed_results[name]
        cold = cold_results[name]
        warm = warm_results[name]
        assert seed["placement"].slice_tiles == cold.placement.slice_tiles
        assert seed["placement"].port_pads == cold.placement.port_pads
        assert {n: t.parent for n, t in seed["routing"].routes.items()} == \
            {n: t.parent for n, t in cold.routing.routes.items()}
        assert seed["routing"].pip_owner == cold.routing.pip_owner
        assert seed["stats"] == cold.resources.stats
        assert seed["timing"] == cold.timing
        assert bytes(seed["bitstream"].bits) == bytes(cold.bitstream.bits)
        assert bytes(warm.bitstream.bits) == bytes(cold.bitstream.bits)
        assert {n: t.parent for n, t in warm.routing.routes.items()} == \
            {n: t.parent for n, t in cold.routing.routes.items()}

    payload = {
        "scale": suite.scale.name,
        "anneal_moves_per_slice": suite.scale.anneal_moves_per_slice,
        "router_iterations": 20,
        "designs": {},
    }
    for name in DESIGN_ORDER:
        routing = cold_results[name].routing
        payload["designs"][name] = {
            "seed_seconds": round(seed_seconds[name], 4),
            "cold_seconds": round(cold_seconds[name], 4),
            "warm_seconds": round(warm_seconds[name], 4),
            "cold_speedup_vs_seed": round(
                seed_seconds[name] / cold_seconds[name], 2),
            "warm_speedup_vs_seed": round(
                seed_seconds[name] / warm_seconds[name], 2),
            "route_iterations": routing.iterations,
            "routed_nets": len(routing.routes),
            "slices": cold_results[name].slice_count,
        }
    seed_total = sum(seed_seconds.values())
    cold_total = sum(cold_seconds.values())
    warm_total = sum(warm_seconds.values())
    payload["totals"] = {
        "seed_seconds": round(seed_total, 4),
        "cold_seconds": round(cold_total, 4),
        "warm_seconds": round(warm_total, 4),
        "cold_speedup_vs_seed": round(seed_total / cold_total, 2),
        "warm_speedup_vs_seed": round(seed_total / warm_total, 2),
    }

    _merge_sections(bench_out_dir, payload)
    benchmark.extra_info["flow"] = payload
    benchmark.pedantic(lambda: payload, rounds=1, iterations=1)

    assert payload["totals"]["cold_speedup_vs_seed"] >= MIN_COLD_SPEEDUP, \
        payload["totals"]
    assert payload["totals"]["warm_speedup_vs_seed"] >= MIN_WARM_SPEEDUP, \
        payload["totals"]


def test_parallel_cold_flow(benchmark, design_suite, bench_out_dir):
    """Cold suite flow at threads=1 vs threads=N, bit-identical results.

    ``threads`` drives both levers at once: process-parallel workers
    across the suite's designs (``jobs``) and thread-scheduled region
    sweeps inside each design's annealer (``REPRO_FLOW_THREADS``
    semantics).  Partitions are fixed across the legs, so the placement
    is a pure function of (seed, partitions) and the two legs must
    produce byte-identical bitstreams — the speedup gate only applies
    where parallel hardware exists.
    """
    suite = design_suite
    cpu_count = os.cpu_count() or 1
    timings = {}
    results = {}
    for threads in (1, FLOW_THREADS):
        clear_routing_graph_cache()
        clear_layout_cache()
        gc.collect()
        start = time.perf_counter()
        results[threads] = implement_design_suite(
            suite, jobs=threads, threads=threads)
        timings[threads] = time.perf_counter() - start

    base = results[1]
    parallel = results[FLOW_THREADS]
    for name in DESIGN_ORDER:
        serial_run, parallel_run = base[name], parallel[name]
        assert serial_run.placement.slice_tiles == \
            parallel_run.placement.slice_tiles, name
        assert serial_run.placement.port_pads == \
            parallel_run.placement.port_pads, name
        assert {n: t.parent
                for n, t in serial_run.routing.routes.items()} == \
            {n: t.parent for n, t in parallel_run.routing.routes.items()}, \
            name
        assert serial_run.routing.pip_owner == \
            parallel_run.routing.pip_owner, name
        assert bytes(serial_run.bitstream.bits) == \
            bytes(parallel_run.bitstream.bits), name

    speedup = round(timings[1] / timings[FLOW_THREADS], 2)
    section = {
        "cpu_count": cpu_count,
        "threads": FLOW_THREADS,
        "threads_1_seconds": round(timings[1], 4),
        "threads_n_seconds": round(timings[FLOW_THREADS], 4),
        "speedup_threads_n_vs_1": speedup,
        "identical_across_threads": True,
        "anneal_modes": {
            name: base[name].placement.anneal_info.get("mode", "serial")
            for name in DESIGN_ORDER},
        "gate_applied": cpu_count >= 2 and FLOW_THREADS > 1,
    }
    _merge_sections(bench_out_dir, {"parallel_cold": section})
    benchmark.extra_info["parallel_cold"] = section
    benchmark.pedantic(lambda: section, rounds=1, iterations=1)

    if section["gate_applied"]:
        assert speedup >= MIN_PARALLEL_SPEEDUP, section


def test_defeat_map_build(benchmark, design_suite, implementations,
                          bench_out_dir):
    """Vectorized defeat-map build vs the python taint flood.

    Asserts the two paths produce *identical* prediction dictionaries
    (hence identical per-class counts), records both build times, and
    holds the vectorized build to the ≥5x acceptance floor over the
    committed flood baselines (the pre-vectorization
    ``defeat_map_seconds`` of BENCH_predict.json, measured on the same
    reference container).  The in-run flood next to it keeps a
    machine-portable ratio in the report.  Without numpy both legs run
    the flood, the identity assertions still hold and the speedup gates
    are skipped.
    """
    vectorized_available = _layout_numpy is not None
    section = {
        "vectorized_available": vectorized_available,
        "min_speedup_vs_committed_flood": MIN_MAP_SPEEDUP,
        # Both legs run with the process-shared tile/PIP caches warm
        # (the service steady state).  The committed flood could never
        # amortize those across builds — its per-analyzer caches died
        # with each map — so the committed numbers are its steady state
        # too, and the comparison is like for like.
        "measurement": "steady-state (shared caches warm, best of 3)",
        "designs": {},
    }
    for name in DESIGN_ORDER:
        impl = implementations[name]
        gc.collect()
        flood_map, flood_seconds = _timed(
            lambda impl=impl: LayoutAnalyzer(
                impl, vectorize=False).build_map())
        vector_seconds = None
        vector_map = None
        for _ in range(3):  # best-of-3 damps single-core scheduler noise
            gc.collect()
            vector_map, seconds = _timed(
                lambda impl=impl: LayoutAnalyzer(impl).build_map())
            vector_seconds = seconds if vector_seconds is None \
                else min(vector_seconds, seconds)

        assert vector_map.predictions == flood_map.predictions, name
        assert vector_map.counts() == flood_map.counts(), name

        committed = COMMITTED_FLOOD_SECONDS.get(name)
        row = {
            "bits": len(flood_map.predictions),
            "flood_seconds": round(flood_seconds, 4),
            "vectorized_seconds": round(vector_seconds, 4),
            "speedup_vs_flood_in_run": round(
                flood_seconds / vector_seconds, 2),
            "committed_flood_seconds": committed,
            "speedup_vs_committed_flood": round(
                committed / vector_seconds, 2) if committed else None,
            "identical_to_flood": True,
            "classes": flood_map.counts(),
        }
        section["designs"][name] = row

    _merge_sections(bench_out_dir, {"defeat_map_build": section})
    benchmark.extra_info["defeat_map_build"] = section
    benchmark.pedantic(lambda: section, rounds=1, iterations=1)

    if vectorized_available:
        for name, row in section["designs"].items():
            speedup = row["speedup_vs_committed_flood"]
            if speedup is not None:
                assert speedup >= MIN_MAP_SPEEDUP, (name, row)
