"""Negotiated-congestion routing over the device's PIP graph.

The router follows the PathFinder recipe: every net is routed with an A*
search over the routing-resource graph, sharing of a wire by several nets is
initially tolerated but progressively penalized (present congestion cost) and
remembered (history cost), and offending nets are ripped up and rerouted
until no wire is overused.  The result records, per net, the route tree
(parent pointers, used PIPs and the path serving every sink), which is what
bitstream generation and the routing-fault models consume.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..cells.library import FF_CELLS, LUT_CELLS
from ..fpga.device import (FF_DATA_PIN, FF_OUTPUT_PIN, FF_PAIRED_LUT,
                           LUT_INPUT_PIN, LUT_OUTPUT_PIN, Device)
from ..fpga.routing import Node, Pip, downhill, node_tile, pad_input, \
    pad_output, ipin, opin
from ..netlist.ir import Definition, Instance, InstancePin, Net, TopPin
from .pack import PackResult, VIRTUAL_CELLS
from .place import Placement


class RoutingError(Exception):
    """Raised when the router cannot legally route the design."""


@dataclasses.dataclass
class SinkSpec:
    """One routable sink of a net."""

    node: Node
    cell: Optional[str]          # flat cell name (None for top-level ports)
    port: Optional[str]          # cell port (e.g. "I2", "D") or port name
    bit: int = 0


@dataclasses.dataclass
class NetRequest:
    """A net the router must realise."""

    name: str
    source: Node
    sinks: List[SinkSpec]


@dataclasses.dataclass
class RouteTree:
    """The routed tree of one net."""

    net: str
    source: Node
    #: node -> parent node (source has no entry)
    parent: Dict[Node, Node]
    #: sink node -> SinkSpec
    sinks: Dict[Node, SinkSpec]

    def pips(self) -> Set[Pip]:
        return {(parent, node) for node, parent in self.parent.items()}

    def nodes(self) -> Set[Node]:
        result = set(self.parent)
        result.add(self.source)
        return result

    def path_to(self, sink: Node) -> List[Node]:
        """Nodes from the source to *sink* (inclusive)."""
        path = [sink]
        current = sink
        while current in self.parent:
            current = self.parent[current]
            path.append(current)
        path.reverse()
        return path

    def sinks_through(self, node: Node) -> List[SinkSpec]:
        """Sinks whose path from the source passes through *node*."""
        result = []
        for sink_node, spec in self.sinks.items():
            current = sink_node
            while True:
                if current == node:
                    result.append(spec)
                    break
                if current not in self.parent:
                    break
                current = self.parent[current]
        return result


@dataclasses.dataclass
class SkippedNet:
    name: str
    reason: str


@dataclasses.dataclass
class DirectConnection:
    """A sink served by a dedicated intra-slice path (no routing)."""

    net: str
    cell: str
    port: str


@dataclasses.dataclass
class RoutingResult:
    """Complete routing of a design."""

    routes: Dict[str, RouteTree]
    skipped: List[SkippedNet]
    direct: List[DirectConnection]
    #: wire/pin node -> owning net name
    node_owner: Dict[Node, str]
    #: PIP -> owning net name
    pip_owner: Dict[Pip, str]
    iterations: int = 0
    total_wirelength: int = 0

    def used_pips(self) -> Set[Pip]:
        return set(self.pip_owner)


# ----------------------------------------------------------------------
# Routing-problem extraction
# ----------------------------------------------------------------------
def _site_of(cell: str, pack_result: PackResult, placement: Placement
             ) -> Tuple[int, int, str]:
    slice_index, slot = pack_result.cell_site[cell]
    x, y = placement.slice_tiles[slice_index]
    return x, y, slot


def _driver_node(net: Net, definition: Definition, pack_result: PackResult,
                 placement: Placement) -> Tuple[Optional[Node], Optional[str]]:
    """Return (source node, skip reason)."""
    drivers = net.drivers()
    if not drivers:
        return None, "undriven"
    if len(drivers) > 1:
        return None, "multiple-drivers"
    driver = drivers[0]
    if isinstance(driver, TopPin):
        pad = placement.port_pads.get((driver.port_name, driver.index))
        if pad is None:
            return None, "unplaced-port"
        return pad_output(pad), None
    assert isinstance(driver, InstancePin)
    cell = driver.instance
    cell_type = cell.reference.name
    if cell_type in ("GND", "VCC"):
        return None, "constant"
    if cell_type in VIRTUAL_CELLS:
        return None, "virtual-driver"
    x, y, slot = _site_of(cell.name, pack_result, placement)
    if cell_type in LUT_CELLS:
        return opin(x, y, LUT_OUTPUT_PIN[slot]), None
    if cell_type in FF_CELLS:
        return opin(x, y, FF_OUTPUT_PIN[slot]), None
    return None, f"unhandled-driver-{cell_type}"


def _sink_specs(net: Net, definition: Definition, pack_result: PackResult,
                placement: Placement, driver_cell: Optional[str]
                ) -> Tuple[List[SinkSpec], List[DirectConnection], int]:
    """Return (routable sinks, direct connections, clock sink count)."""
    sinks: List[SinkSpec] = []
    direct: List[DirectConnection] = []
    clock_sinks = 0
    for pin in net.sinks():
        if isinstance(pin, TopPin):
            pad = placement.port_pads.get((pin.port_name, pin.index))
            if pad is None:
                continue
            sinks.append(SinkSpec(pad_input(pad), None, pin.port_name,
                                  pin.index))
            continue
        assert isinstance(pin, InstancePin)
        cell = pin.instance
        cell_type = cell.reference.name
        if cell_type in VIRTUAL_CELLS:
            continue
        if cell_type in FF_CELLS and pin.port_name == "C":
            clock_sinks += 1
            continue
        x, y, slot = _site_of(cell.name, pack_result, placement)
        if cell_type in LUT_CELLS:
            index = int(pin.port_name[1:])
            pin_name = LUT_INPUT_PIN[(slot, index)]
            sinks.append(SinkSpec(ipin(x, y, pin_name), cell.name,
                                  pin.port_name))
            continue
        if cell_type in FF_CELLS:
            if pin.port_name == "D":
                slice_index, _ = pack_result.cell_site[cell.name]
                assignment = pack_result.slices[slice_index]
                paired_lut = assignment.cells.get(FF_PAIRED_LUT[slot])
                if slot in assignment.direct_ff_data and \
                        paired_lut is not None and paired_lut == driver_cell:
                    direct.append(DirectConnection(net.name, cell.name, "D"))
                    continue
                sinks.append(SinkSpec(ipin(x, y, FF_DATA_PIN[slot]),
                                      cell.name, "D"))
            elif pin.port_name == "CE":
                sinks.append(SinkSpec(ipin(x, y, "CE"), cell.name, "CE"))
            elif pin.port_name in ("R", "CLR"):
                sinks.append(SinkSpec(ipin(x, y, "SR"), cell.name,
                                      pin.port_name))
            continue
    return sinks, direct, clock_sinks


def extract_routing_problem(definition: Definition, pack_result: PackResult,
                            placement: Placement
                            ) -> Tuple[List[NetRequest], List[SkippedNet],
                                       List[DirectConnection]]:
    """Turn the flat netlist + placement into routing requests."""
    requests: List[NetRequest] = []
    skipped: List[SkippedNet] = []
    direct_connections: List[DirectConnection] = []

    for net in definition.nets.values():
        source, reason = _driver_node(net, definition, pack_result, placement)
        if source is None:
            skipped.append(SkippedNet(net.name, reason or "unroutable"))
            continue
        driver_cell = None
        drivers = net.drivers()
        if drivers and isinstance(drivers[0], InstancePin):
            driver_cell = drivers[0].instance.name
        sinks, direct, clock_sinks = _sink_specs(
            net, definition, pack_result, placement, driver_cell)
        direct_connections.extend(direct)
        if not sinks:
            if clock_sinks:
                skipped.append(SkippedNet(net.name, "global-clock"))
            elif direct:
                skipped.append(SkippedNet(net.name, "intra-slice"))
            else:
                skipped.append(SkippedNet(net.name, "no-sinks"))
            continue
        requests.append(NetRequest(net.name, source, sinks))
    return requests, skipped, direct_connections


# ----------------------------------------------------------------------
# PathFinder-style router
# ----------------------------------------------------------------------
class Router:
    """Negotiated-congestion router."""

    def __init__(self, device: Device, max_iterations: int = 12,
                 present_factor: float = 0.5,
                 present_growth: float = 1.8,
                 history_increment: float = 1.0,
                 allow_overuse: bool = False,
                 heuristic_weight: float = 1.3,
                 bounding_box_margin: int = 3) -> None:
        self.device = device
        self.max_iterations = max_iterations
        self.present_factor = present_factor
        self.present_growth = present_growth
        self.history_increment = history_increment
        self.allow_overuse = allow_overuse
        #: weighted-A* factor (>1 trades a little wirelength for speed)
        self.heuristic_weight = heuristic_weight
        #: exploration is confined to the net's bounding box plus this margin
        #: (the margin grows on later negotiation iterations)
        self.bounding_box_margin = bounding_box_margin
        self._downhill_cache: Dict[Node, List[Node]] = {}
        self._extra_margin = 0

    def _downhill(self, node: Node) -> List[Node]:
        cached = self._downhill_cache.get(node)
        if cached is None:
            cached = downhill(self.device, node)
            self._downhill_cache[node] = cached
        return cached

    # --------------------------------------------------------------
    def route(self, requests: Sequence[NetRequest]) -> Tuple[
            Dict[str, RouteTree], int]:
        """Route all requests; returns (trees, iterations used)."""
        occupancy: Dict[Node, int] = {}
        history: Dict[Node, float] = {}
        trees: Dict[str, RouteTree] = {}
        present_factor = self.present_factor

        order = sorted(requests, key=lambda r: (len(r.sinks), r.name))
        to_route = list(order)
        iteration = 0
        while iteration < self.max_iterations:
            iteration += 1
            # Congested designs get a progressively wider search window.
            self._extra_margin = 2 * (iteration - 1)
            for request in to_route:
                existing = trees.pop(request.name, None)
                if existing is not None:
                    self._release(existing, occupancy)
                tree = self._route_net(request, occupancy, history,
                                       present_factor)
                trees[request.name] = tree
                self._claim(tree, occupancy)

            overused = {node for node, count in occupancy.items()
                        if count > 1 and node[0] == "wire"}
            if not overused:
                return trees, iteration
            for node in overused:
                history[node] = history.get(node, 0.0) + \
                    self.history_increment
            present_factor *= self.present_growth
            to_route = [request for request in order
                        if trees[request.name].nodes() & overused]

        if not self.allow_overuse:
            overused = {node for node, count in occupancy.items()
                        if count > 1 and node[0] == "wire"}
            raise RoutingError(
                f"router failed to resolve congestion after "
                f"{self.max_iterations} iterations; {len(overused)} wires "
                f"remain overused")
        return trees, iteration

    # --------------------------------------------------------------
    def _claim(self, tree: RouteTree, occupancy: Dict[Node, int]) -> None:
        for node in tree.nodes():
            occupancy[node] = occupancy.get(node, 0) + 1

    def _release(self, tree: RouteTree, occupancy: Dict[Node, int]) -> None:
        for node in tree.nodes():
            remaining = occupancy.get(node, 0) - 1
            if remaining <= 0:
                occupancy.pop(node, None)
            else:
                occupancy[node] = remaining

    def _node_cost(self, node: Node, occupancy: Dict[Node, int],
                   history: Dict[Node, float],
                   present_factor: float) -> float:
        cost = 1.0 + history.get(node, 0.0)
        usage = occupancy.get(node, 0)
        if usage > 0 and node[0] == "wire":
            cost += present_factor * usage
        elif usage > 0:
            # Pins are exclusive: make reuse by another net prohibitive.
            cost += 1000.0
        return cost

    def _route_net(self, request: NetRequest, occupancy: Dict[Node, int],
                   history: Dict[Node, float],
                   present_factor: float) -> RouteTree:
        device = self.device
        parent: Dict[Node, Node] = {}
        tree_nodes: Set[Node] = {request.source}
        sink_map: Dict[Node, SinkSpec] = {}

        # Grow the tree outwards: route near sinks first so that far sinks
        # can attach to an already-extended tree instead of searching from
        # the source every time.
        source_tile = node_tile(device, request.source)
        ordered_sinks = sorted(
            request.sinks,
            key=lambda spec: device.manhattan(
                source_tile, node_tile(device, spec.node)))

        bounding_box = self._net_bounding_box(request)
        for spec in ordered_sinks:
            if spec.node in tree_nodes:
                sink_map[spec.node] = spec
                continue
            path = self._find_path(tree_nodes, spec.node, occupancy, history,
                                   present_factor, bounding_box)
            if path is None:
                # Retry once without the bounding-box restriction before
                # declaring the sink unroutable.
                path = self._find_path(tree_nodes, spec.node, occupancy,
                                       history, present_factor, None)
            if path is None:
                raise RoutingError(
                    f"no path from {request.source} to {spec.node} "
                    f"for net {request.name!r}")
            previous = path[0]
            for node in path[1:]:
                if node not in parent:
                    parent[node] = previous
                previous = node
                tree_nodes.add(node)
            sink_map[spec.node] = spec

        return RouteTree(request.name, request.source, parent, sink_map)

    def _net_bounding_box(self, request: NetRequest
                          ) -> Tuple[int, int, int, int]:
        """Bounding box (min x, min y, max x, max y) of the net's terminals,
        expanded by the configured margin."""
        device = self.device
        tiles = [node_tile(device, request.source)]
        tiles.extend(node_tile(device, spec.node) for spec in request.sinks)
        margin = self.bounding_box_margin + self._extra_margin
        min_x = max(0, min(t[0] for t in tiles) - margin)
        min_y = max(0, min(t[1] for t in tiles) - margin)
        max_x = min(device.columns - 1, max(t[0] for t in tiles) + margin)
        max_y = min(device.rows - 1, max(t[1] for t in tiles) + margin)
        return (min_x, min_y, max_x, max_y)

    def _find_path(self, tree_nodes: Set[Node], target: Node,
                   occupancy: Dict[Node, int], history: Dict[Node, float],
                   present_factor: float,
                   bounding_box: Optional[Tuple[int, int, int, int]]
                   ) -> Optional[List[Node]]:
        device = self.device
        target_tile = node_tile(device, target)
        weight = self.heuristic_weight

        def heuristic(node: Node) -> float:
            return weight * device.manhattan(node_tile(device, node),
                                             target_tile)

        came_from: Dict[Node, Optional[Node]] = {}
        best_cost: Dict[Node, float] = {}
        frontier: List[Tuple[float, float, int, Node]] = []
        counter = 0
        # Seed in sorted order: tree_nodes is a set of string-bearing
        # tuples, so raw iteration order follows the per-process hash seed
        # and equal-cost heap pops would pick different paths run to run.
        for node in sorted(tree_nodes):
            came_from[node] = None
            best_cost[node] = 0.0
            heapq.heappush(frontier, (heuristic(node), 0.0, counter, node))
            counter += 1

        # Hot loop: the helpers are inlined because this search dominates the
        # implementation runtime of large TMR designs.
        target_x, target_y = target_tile
        infinity = float("inf")
        heappush = heapq.heappush
        heappop = heapq.heappop
        occupancy_get = occupancy.get
        history_get = history.get
        best_get = best_cost.get

        while frontier:
            _, cost_so_far, _, node = heappop(frontier)
            if cost_so_far > best_get(node, infinity):
                continue
            if node == target:
                path = [node]
                current = node
                while came_from[current] is not None:
                    current = came_from[current]
                    path.append(current)
                path.reverse()
                return path
            for neighbor in self._downhill(node):
                kind = neighbor[0]
                if kind in ("ipin", "pad_i") and neighbor != target:
                    continue  # foreign sinks are not through-routing resources
                if bounding_box is not None and kind == "wire":
                    if not (bounding_box[0] <= neighbor[1] <= bounding_box[2]
                            and bounding_box[1] <= neighbor[2]
                            <= bounding_box[3]):
                        continue
                step = 1.0 + history_get(neighbor, 0.0)
                usage = occupancy_get(neighbor, 0)
                if usage:
                    if kind == "wire":
                        step += present_factor * usage
                    else:
                        step += 1000.0
                new_cost = cost_so_far + step
                if new_cost < best_get(neighbor, infinity):
                    best_cost[neighbor] = new_cost
                    came_from[neighbor] = node
                    counter += 1
                    if kind == "pad_i":
                        estimate = 0.0
                    else:
                        estimate = weight * (abs(neighbor[1] - target_x)
                                             + abs(neighbor[2] - target_y))
                    heappush(frontier, (new_cost + estimate, new_cost,
                                        counter, neighbor))
        return None


def route_design(definition: Definition, pack_result: PackResult,
                 placement: Placement, device: Device,
                 max_iterations: int = 12,
                 allow_overuse: bool = False) -> RoutingResult:
    """Extract the routing problem and run the negotiated-congestion router."""
    requests, skipped, direct = extract_routing_problem(
        definition, pack_result, placement)
    router = Router(device, max_iterations=max_iterations,
                    allow_overuse=allow_overuse)
    trees, iterations = router.route(requests)

    node_owner: Dict[Node, str] = {}
    pip_owner: Dict[Pip, str] = {}
    wirelength = 0
    for name, tree in trees.items():
        # nodes()/pips() are sets of string-bearing tuples; sort so the
        # ownership dictionaries (and everything downstream of their
        # iteration order, e.g. fault-list construction) never depend on
        # the per-process hash seed.
        for node in sorted(tree.nodes()):
            node_owner[node] = name
            if node[0] == "wire":
                wirelength += 1
        for pip in sorted(tree.pips()):
            pip_owner[pip] = name

    return RoutingResult(
        routes=trees,
        skipped=skipped,
        direct=direct,
        node_owner=node_owner,
        pip_owner=pip_owner,
        iterations=iterations,
        total_wirelength=wirelength,
    )
