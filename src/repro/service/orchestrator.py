"""The campaign orchestrator: an asyncio job runner over the cache tier.

:class:`CampaignService` owns

* a :class:`~repro.service.jobs.JobQueue` (submissions, coalescing),
* an asyncio event loop on a daemon thread (so the service embeds in any
  host — the CLI's HTTP server, a test, a notebook — without requiring
  the host to be async),
* a semaphore bounding how many campaigns execute concurrently, each on
  its own worker thread via :func:`asyncio.to_thread`,
* the process-wide :class:`~repro.service.tier.SharedCacheTier`, which
  it activates so golden traces and defeat maps persist across jobs and
  across service restarts (the flow store rides inside the same tier).

Campaign *compute* does not run on the loop: a job is one synchronous
:func:`repro.scenarios.run_scenario` call on a worker thread, optionally
sharded across worker *processes* by the engine's ``sharded`` backend.
The loop only sequences jobs, which keeps submission and status queries
responsive while campaigns crunch.

Failure surfacing: any exception escaping a job — including
:class:`~repro.faults.engine.CampaignWorkerError` from a killed sharded
worker — marks the job ``failed`` with the formatted cause; it never
hangs the queue or the loop.

Crash safety (PR 8): when the service has a cache tier, every job
lifecycle event is journaled to an append-only WAL under the tier root
*before* the state change is acted on (see :mod:`repro.service.journal`).
On start the journal is replayed and jobs that never settled — the
previous incarnation crashed mid-campaign — are resubmitted; their shard
checkpoints (stored by the ``sharded`` backend under the same tier) make
the rerun recompute only the missing shards while producing a
byte-identical stable report.  ``stop()`` drains in-flight jobs and
writes a clean ``shutdown`` marker so the next start knows it is not
recovering from a crash.
"""

from __future__ import annotations

import asyncio
import dataclasses
import threading
import time
import traceback
from typing import Dict, List, Optional, Tuple

from ..scenarios import run_scenario
from .chaos import ChaosCrash
from .jobs import Job, JobQueue, JobSpec, JobState
from .journal import JobJournal
from .tier import SharedCacheTier, TierLike, activate_tier, resolve_tier

#: Default cap on concurrently executing jobs.  Two keeps a long campaign
#: from starving short ones while bounding memory (each running job holds
#: its pipeline context).
DEFAULT_MAX_PARALLEL = 2


class ServiceError(RuntimeError):
    """The service was used in an invalid state (not started, stopped)."""


class ServiceDraining(ServiceError):
    """The service is shutting down and no longer accepts submissions."""


class _JobInterrupted(Exception):
    """Raised inside a worker's progress callback to tear the job down.

    Cancellation is cooperative: the campaign engine ticks progress
    every shard/interval, the monitor checks the job's cancel event and
    deadline at each tick, and this exception unwinds the pipeline.
    """


class CampaignService:
    """Accepts :class:`JobSpec` submissions and runs them to reports.

    Parameters
    ----------
    tier:
        The shared warm-cache tier (a :class:`SharedCacheTier`, a
        directory path, or ``None`` to run without persistence).  The
        service activates it process-wide so every cache layer reads
        through it.
    max_parallel:
        Concurrently executing jobs (queue depth is unbounded).
    default_backend:
        Applied to submissions that do not pin a backend — the service
        default is the engine's ``sharded`` backend.  Normalization
        happens at submission time, so the job's fingerprint, its report
        provenance and a direct ``run_scenario`` call all agree.
    """

    def __init__(self, *, tier: TierLike = None,
                 max_parallel: int = DEFAULT_MAX_PARALLEL,
                 default_backend: Optional[str] = "sharded") -> None:
        if max_parallel < 1:
            raise ValueError("max_parallel must be at least 1")
        self.queue = JobQueue()
        self.tier: Optional[SharedCacheTier] = resolve_tier(tier)
        self.max_parallel = max_parallel
        self.default_backend = default_backend
        self.journal: Optional[JobJournal] = None
        #: outcome of the last startup recovery (see :meth:`_recover`)
        self.last_recovery: Dict[str, object] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._futures: List["asyncio.Future"] = []
        self._draining = False
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "CampaignService":
        with self._lock:
            if self._loop is not None:
                return self
            activate_tier(self.tier)
            if self.tier is not None:
                self.journal = JobJournal(self.tier.root / "journal")
            self._draining = False
            self._loop = asyncio.new_event_loop()
            # The semaphore must be created on the service loop.
            self._semaphore = asyncio.Semaphore(self.max_parallel)
            self._thread = threading.Thread(
                target=self._loop.run_forever,
                name="repro-campaign-service", daemon=True)
            self._thread.start()
        # Outside the lock: recovery resubmits through the normal path,
        # which needs the loop (started above) and takes the lock itself.
        self._recover()
        return self

    def _recover(self) -> None:
        """Replay the journal and resubmit jobs that never settled.

        The previous incarnation crashed (or was SIGKILLed) with these
        jobs queued or running; their shard checkpoints are still in the
        tier, so the resubmitted runs recompute only what is missing.
        The journal is compacted before resubmission — the recovered
        jobs are re-journaled as fresh submissions with a
        ``recovered_from`` pointer to their old id.
        """
        if self.journal is None:
            return
        replay = self.journal.replay()
        # Accumulate locally and publish with one assignment at the end:
        # incrementing through self.last_recovery would be an unlocked
        # read-modify-write racing any stats() reader (lint C201).
        recovery: Dict[str, object] = {
            "recovered_jobs": 0,
            "clean_shutdown": replay.clean_shutdown,
            "replayed": replay.replayed,
            "settled": replay.settled,
            "corrupt_lines": replay.corrupt_lines,
            "invalid_specs": 0,
        }
        if replay.replayed or replay.corrupt_lines:
            self.journal.reset()
        for info in replay.unsettled:
            try:
                spec = JobSpec.from_dict(dict(info["spec"]))
                job, coalesced = self.submit_detailed(
                    spec, recovered_from=str(info["job_id"]))
            except (ValueError, KeyError, TypeError):
                # A spec this incarnation cannot parse (foreign field,
                # retired scenario) is dropped, not fatal: recovery must
                # never prevent the service from starting.
                recovery["invalid_specs"] += 1
                continue
            if not coalesced:
                job.recovered = True
                recovery["recovered_jobs"] += 1
        self.last_recovery = recovery

    def stop(self, timeout: Optional[float] = 30.0) -> None:
        """Drain running jobs, journal a clean shutdown, stop the loop.

        New submissions are refused (``ServiceDraining``) the moment stop
        begins.  The clean ``shutdown`` marker is only written when every
        job actually settled within *timeout* — an incomplete drain must
        look like a crash to the next start so it recovers the stragglers.
        """
        with self._lock:
            self._draining = True
            loop, thread = self._loop, self._thread
        if loop is None:
            return
        drained = self.wait(timeout=timeout)
        with self._lock:
            if self._loop is not loop:
                return  # a concurrent stop() won the race and finished
            self._loop = self._thread = self._semaphore = None
        if drained and self.journal is not None:
            self.journal.record("shutdown", clean=True)
        loop.call_soon_threadsafe(loop.stop)
        if thread is not None:
            thread.join(timeout=5.0)
        loop.close()

    @property
    def draining(self) -> bool:
        """Whether the service is refusing new work pending shutdown."""
        with self._lock:
            return self._draining

    def __enter__(self) -> "CampaignService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> Job:
        """Queue *spec*; returns immediately with the (possibly shared) job.

        Identical in-flight submissions coalesce: the returned job may
        already be computing on behalf of an earlier submitter, and both
        observe the single result.
        """
        return self.submit_detailed(spec)[0]

    def submit_detailed(self, spec: JobSpec,
                        recovered_from: Optional[str] = None
                        ) -> Tuple[Job, bool]:
        """:meth:`submit`, also reporting whether *this* call coalesced.

        The flag comes straight from the queue's atomic submit — callers
        (the HTTP handler) must not infer it from shared counters, which
        race under concurrent submissions.
        """
        with self._lock:
            loop = self._loop
            draining = self._draining
        if loop is None:
            raise ServiceError("service is not running; call start() first")
        if draining:
            raise ServiceDraining("service is draining; resubmit after "
                                  "restart")
        if spec.backend is None and self.default_backend is not None:
            spec = dataclasses.replace(spec, backend=self.default_backend)
        job, created = self.queue.submit(spec)
        if created:
            # WAL discipline: the submission is durable *before* the
            # compute is scheduled, so a crash between here and settle
            # leaves a replayable record.
            if self.journal is not None:
                fields: Dict[str, object] = {
                    "job_id": job.id, "fingerprint": job.fingerprint,
                    "spec": job.spec.as_dict()}
                if recovered_from is not None:
                    fields["recovered_from"] = recovered_from
                self.journal.record("submitted", **fields)
            future = asyncio.run_coroutine_threadsafe(
                self._run_job(job), loop)
            with self._lock:
                self._futures.append(future)
        return job, not created

    def run(self, spec: JobSpec,
            timeout: Optional[float] = None) -> Job:
        """Submit and block until the job settles (convenience)."""
        job = self.submit(spec)
        if not job.wait(timeout):
            raise TimeoutError(f"job {job.id} did not settle in {timeout}s")
        return job

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    async def _run_job(self, job: Job) -> None:
        semaphore = self._semaphore
        assert semaphore is not None
        remaining = job.deadline_remaining()
        if remaining is not None and remaining <= 0:
            self._settle_cancelled(job, "deadline exceeded before start")
            return
        try:
            await asyncio.wait_for(semaphore.acquire(), timeout=remaining)
        except asyncio.TimeoutError:
            self._settle_cancelled(job, "deadline exceeded while queued")
            return
        try:
            await asyncio.to_thread(self._execute, job)
        finally:
            semaphore.release()

    def _settle_cancelled(self, job: Job, reason: str) -> None:
        self.queue.cancel(job, reason)
        if self.journal is not None:
            self.journal.record("cancelled", job_id=job.id, reason=reason)

    def _execute(self, job: Job) -> None:
        if job.done_event.is_set():
            # Cancelled while waiting on the semaphore (client ask) —
            # nothing to run.
            return
        self.queue.mark_running(job)
        if self.journal is not None:
            self.journal.record("running", job_id=job.id)

        def monitor(design: str, done: int, total: int) -> None:
            job.progress[design] = {"done": done, "total": total}
            # Cooperative teardown: cancellation and deadlines are
            # observed at progress ticks (every shard / backend
            # interval), the natural safe points of a campaign.
            if job.cancel_event.is_set():
                raise _JobInterrupted("cancelled")
            remaining = job.deadline_remaining()
            if remaining is not None and remaining <= 0:
                raise _JobInterrupted("deadline exceeded")

        try:
            report = run_scenario(
                job.spec.scenario,
                flow_cache=self.tier.flow_store if self.tier else None,
                progress_callback=monitor,
                **job.spec.overrides())
        except ChaosCrash:
            # The chaos harness simulating a hard service crash: like a
            # real SIGKILL the job must never settle — only the journal
            # knows about it, and the next start recovers it.
            raise
        except _JobInterrupted as exc:
            self._settle_cancelled(job, str(exc))
        except Exception as exc:
            tail = traceback.format_exception_only(type(exc), exc)[-1].strip()
            self.queue.fail(job, tail)
            if self.journal is not None:
                self.journal.record("failed", job_id=job.id, error=tail)
        else:
            self.queue.finish(job, report)
            if self.journal is not None:
                self.journal.record("done", job_id=job.id)

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------
    def cancel(self, job_id: str, reason: str = "cancelled by client"
               ) -> Job:
        """Cancel a job; settles immediately when it has not started.

        A *running* job only gets its cancel event set here — the worker
        observes it at the next progress tick and settles the job itself
        (cooperative teardown).  Raises :class:`KeyError` for unknown ids.
        """
        job = self.queue.get(job_id)
        if job.state == JobState.PENDING:
            self._settle_cancelled(job, reason)
        elif job.state == JobState.RUNNING:
            job.cancel_event.set()
        return job

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until every submitted job has settled."""
        with self._lock:
            futures = list(self._futures)
        deadline: Optional[float] = None
        if timeout is not None:
            deadline = time.monotonic() + timeout
        for future in futures:
            remaining: Optional[float] = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            try:
                future.result(timeout=remaining)
            except Exception:
                # Job failures are recorded on the job itself.
                pass
        return all(job.done_event.is_set() for job in self.queue.jobs())

    def stats(self) -> Dict[str, object]:
        out: Dict[str, object] = {"queue": self.queue.stats(),
                                  "max_parallel": self.max_parallel,
                                  "default_backend": self.default_backend,
                                  "draining": self.draining}
        if self.last_recovery:
            out["recovery"] = dict(self.last_recovery)
        if self.tier is not None:
            out["tier"] = self.tier.summary()
        return out
