"""Per-module AST context: parents, qualnames, import-alias resolution.

The checkers are symbol-walking, not just token-matching: ``import time
as _time; _time.sleep(...)`` must resolve to ``time.sleep``, and a
mutation is only "locked" when an *ancestor* ``with`` statement holds
one of the owning class's lock attributes.  This module centralizes
that plumbing so each rule stays a readable tree walk.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple


class ModuleContext:
    """One parsed module plus the lookup tables the checkers need."""

    def __init__(self, path: Path, rel_path: str, source: str) -> None:
        self.path = path
        #: repository-relative posix path (the identity findings carry)
        self.rel_path = rel_path
        self.source = source
        self.tree = ast.parse(source, filename=rel_path)
        self.parents: Dict[ast.AST, ast.AST] = {}
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node
        self.aliases = self._collect_aliases()

    # ------------------------------------------------------------------
    # Imports
    # ------------------------------------------------------------------
    def _collect_aliases(self) -> Dict[str, str]:
        """Name -> dotted path for every import binding in the module.

        ``import time as _time`` maps ``_time -> time``; ``from datetime
        import datetime`` maps ``datetime -> datetime.datetime``; dotted
        ``import urllib.request`` binds the root (``urllib -> urllib``)
        and attribute resolution walks the rest naturally.
        """
        aliases: Dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    if name.asname is not None:
                        aliases[name.asname] = name.name
                    else:
                        root = name.name.split(".")[0]
                        aliases[root] = root
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                prefix = "." * node.level + module
                for name in node.names:
                    if name.name == "*":
                        continue
                    bound = name.asname or name.name
                    aliases[bound] = (f"{prefix}.{name.name}"
                                      if prefix else name.name)
        return aliases

    def dotted(self, node: ast.AST) -> Optional[str]:
        """The alias-resolved dotted path of a Name/Attribute chain.

        Unresolvable bases (calls, subscripts) return ``None``; a plain
        local name resolves to itself, so ``self.root.glob`` comes back
        as ``"self.root.glob"`` for suffix-matching rules.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.aliases.get(node.id, node.id)
        return ".".join([base] + list(reversed(parts)))

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def qualname(self, node: ast.AST) -> str:
        """Dotted name of the enclosing defs (``"<module>"`` at top)."""
        names: List[str] = []
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                names.append(ancestor.name)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            names.insert(0, node.name)
        return ".".join(reversed(names)) if names else "<module>"

    def enclosing_function(self, node: ast.AST
                           ) -> Optional[ast.AST]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                return ancestor
        return None

    def consuming_call(self, node: ast.AST) -> Optional[str]:
        """Dotted name of the call that consumes *node*'s result, if any.

        Transparent wrappers are crossed: in ``sorted(p.glob(x))``,
        ``sorted(f(p) for p in root.iterdir())`` and
        ``frozenset(d for d in (f(n) for n in nets))`` the innermost
        iteration resolves to ``"sorted"`` / ``"frozenset"``.
        """
        child: ast.AST = node
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.Call):
                if child in ancestor.args:
                    return self.dotted(ancestor.func)
                return None
            if isinstance(ancestor, ast.comprehension):
                if child is not ancestor.iter:
                    return None
                continue
            if isinstance(ancestor, (ast.Starred, ast.GeneratorExp,
                                     ast.ListComp)):
                child = ancestor
                continue
            return None
        return None

    def inside_sorted(self, node: ast.AST) -> bool:
        """Whether *node*'s result is consumed by a ``sorted(...)`` call."""
        return self.consuming_call(node) == "sorted"

    def held_locks(self, node: ast.AST) -> Tuple[str, ...]:
        """Lock expressions held by ``with`` statements enclosing *node*.

        Returns dotted paths of every context manager in scope, e.g.
        ``("self._lock",)`` — the concurrency rules intersect these with
        the owning class's known lock attributes.
        """
        held: List[str] = []
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.With, ast.AsyncWith)):
                for item in ancestor.items:
                    name = self.dotted(item.context_expr)
                    if name is not None:
                        held.append(name)
        return tuple(held)

    def self_rooted(self, node: ast.AST) -> Optional[str]:
        """Dotted path when the expression chains off ``self``, else None.

        Subscripts are transparent: ``self.stats["hits"]`` roots at
        ``self.stats``.
        """
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            if isinstance(node, ast.Subscript):
                node = node.value
                continue
            dotted = self.dotted(node)
            if dotted is not None and dotted.startswith("self."):
                return dotted
            node = node.value
        return None
