"""Tests for the structural RTL generators against behavioural references."""

import pytest

from repro.netlist import Netlist, flatten, validate_definition
from repro.rtl import (FirSpec, build_fir, constant_multiplier,
                       counter_reference, expected_component_counts,
                       fir_reference, min_output_width, negator,
                       register_bank, ripple_carry_adder,
                       ripple_carry_subtractor, shift_register, up_counter)
from repro.sim import (CompiledDesign, Simulator, random_samples,
                       stimulus_from_samples)


def _wrap_signed(value, width):
    mask = (1 << width) - 1
    value &= mask
    return value - (1 << width) if value & (1 << (width - 1)) else value


def _combinational_eval(netlist, definition, inputs, output):
    flat = flatten(netlist, definition,
                   flat_name=f"{definition.name}_flat_{len(netlist.libraries['flat'].definitions) if 'flat' in netlist.libraries else 0}")
    compiled = CompiledDesign(flat)
    trace = Simulator(compiled).run([inputs])
    return trace.output_ints(output)[0]


class TestArith:
    @pytest.mark.parametrize("width", [3, 5, 8])
    def test_adder_exhaustive_small_or_sampled(self, width):
        netlist = Netlist("t")
        adder = ripple_carry_adder(netlist, width)
        netlist.set_top(adder)
        flat = flatten(netlist, adder)
        compiled = CompiledDesign(flat)
        simulator = Simulator(compiled)
        values = range(-(1 << (width - 1)), 1 << (width - 1)) if width <= 4 \
            else random_samples(12, width, seed=width)
        for a in values:
            for b in (0, 1, -1, 3, -(1 << (width - 1))):
                trace = simulator.run([{"A": a, "B": b}])
                assert trace.output_ints("S")[0] == _wrap_signed(a + b, width)

    def test_adder_carry_out(self):
        netlist = Netlist("t")
        adder = ripple_carry_adder(netlist, 4, with_carry_out=True)
        netlist.set_top(adder)
        compiled = CompiledDesign(flatten(netlist, adder))
        trace = Simulator(compiled).run([{"A": 0b1111, "B": 0b0001}])
        assert trace.outputs[0]["CO"][0] == 1

    def test_subtractor(self):
        netlist = Netlist("t")
        sub = ripple_carry_subtractor(netlist, 6)
        netlist.set_top(sub)
        compiled = CompiledDesign(flatten(netlist, sub))
        simulator = Simulator(compiled)
        for a, b in [(5, 3), (-7, 4), (0, 0), (-16, -1), (13, -13)]:
            trace = simulator.run([{"A": a, "B": b}])
            assert trace.output_ints("D")[0] == _wrap_signed(a - b, 6)

    def test_negator(self):
        netlist = Netlist("t")
        neg = negator(netlist, 5)
        netlist.set_top(neg)
        compiled = CompiledDesign(flatten(netlist, neg))
        simulator = Simulator(compiled)
        for a in range(-16, 16):
            trace = simulator.run([{"A": a}])
            assert trace.output_ints("P")[0] == _wrap_signed(-a, 5)

    @pytest.mark.parametrize("coefficient", [0, 1, -1, 6, -9, 73, 120, -120])
    def test_constant_multiplier(self, coefficient):
        netlist = Netlist("t")
        width_in, width_out = 5, 13
        mult = constant_multiplier(netlist, coefficient, width_in, width_out)
        netlist.set_top(mult)
        compiled = CompiledDesign(flatten(netlist, mult))
        simulator = Simulator(compiled)
        for a in range(-16, 16, 3):
            trace = simulator.run([{"A": a}])
            assert trace.output_ints("P")[0] == \
                _wrap_signed(coefficient * a, width_out), \
                f"coefficient={coefficient}, a={a}"

    def test_multiplier_definition_reuse(self):
        netlist = Netlist("t")
        first = constant_multiplier(netlist, 6, 4, 8)
        second = constant_multiplier(netlist, 6, 4, 8)
        assert first is second

    def test_min_output_width(self):
        # The paper's filter: 9-bit data, gain 300 -> 18 bits needed.
        assert min_output_width(FirSpec.paper().coefficients, 9) <= 18
        assert min_output_width((1,), 4) == 4
        assert min_output_width((0,), 4) == 4


class TestRegisters:
    def test_register_bank_delays_by_one_cycle(self):
        netlist = Netlist("t")
        reg = register_bank(netlist, 4)
        netlist.set_top(reg)
        compiled = CompiledDesign(flatten(netlist, reg))
        samples = [3, -5, 7, 0]
        trace = Simulator(compiled).run([{"D": s} for s in samples])
        outputs = trace.output_ints("Q")
        assert outputs[0] == 0            # initial register state
        assert outputs[1:] == samples[:-1]

    def test_register_bank_with_enable(self):
        netlist = Netlist("t")
        reg = register_bank(netlist, 3, with_enable=True, with_reset=True)
        netlist.set_top(reg)
        compiled = CompiledDesign(flatten(netlist, reg))
        stimulus = [
            {"D": 3, "CE": 1, "R": 0},
            {"D": 2, "CE": 0, "R": 0},   # hold
            {"D": 1, "CE": 1, "R": 1},   # synchronous reset
            {"D": 1, "CE": 1, "R": 0},
        ]
        outputs = Simulator(compiled).run(stimulus).output_ints("Q",
                                                                signed=False)
        assert outputs == [0, 3, 3, 0]

    def test_shift_register_structure(self):
        netlist = Netlist("t")
        shift = shift_register(netlist, 2, 3)
        counts = shift.count_primitives()
        assert counts.get("FD") == 6
        assert {"Q1", "Q2", "Q3"} <= set(shift.ports)


class TestCounter:
    def test_up_counter_counts_and_wraps(self):
        netlist = Netlist("t")
        counter = up_counter(netlist, 3)
        netlist.set_top(counter)
        compiled = CompiledDesign(flatten(netlist, counter))
        cycles = 10
        stimulus = [{"R": 0, "CE": 1} for _ in range(cycles)]
        outputs = Simulator(compiled).run(stimulus).output_ints("Q",
                                                                signed=False)
        assert outputs == counter_reference(3, cycles)

    def test_up_counter_reset_and_enable(self):
        netlist = Netlist("t")
        counter = up_counter(netlist, 4)
        netlist.set_top(counter)
        compiled = CompiledDesign(flatten(netlist, counter))
        enable = [1, 1, 0, 1, 1, 1]
        reset = [0, 0, 0, 0, 1, 0]
        stimulus = [{"R": r, "CE": e} for e, r in zip(enable, reset)]
        outputs = Simulator(compiled).run(stimulus).output_ints("Q",
                                                                signed=False)
        assert outputs == counter_reference(4, len(enable), enable, reset)


class TestFir:
    def test_paper_spec_constants(self):
        spec = FirSpec.paper()
        assert spec.taps == 11
        assert spec.data_width == 9
        assert spec.output_width == 18
        assert spec.coefficients[:6] == (1, -1, -9, 6, 73, 120)
        assert spec.coefficients == tuple(reversed(spec.coefficients))

    def test_component_inventory_matches_paper(self, tiny_fir):
        _netlist, spec, _top, components = tiny_fir
        expected = expected_component_counts(spec)
        assert len(components.registers) == expected["registers"]
        assert len(components.multipliers) == expected["multipliers"]
        assert len(components.adders) == expected["adders"]

    def test_paper_inventory_counts(self):
        expected = expected_component_counts(FirSpec.paper())
        # "eleven dedicated 9-bit multipliers, ten 18-bit adders and ten
        #  9-bit registers"
        assert expected == {"registers": 10, "multipliers": 11, "adders": 10}

    def test_fir_matches_reference(self, tiny_fir, tiny_fir_compiled):
        _netlist, spec, _top, _components = tiny_fir
        samples = random_samples(24, spec.data_width, seed=9)
        trace = Simulator(tiny_fir_compiled).run(stimulus_from_samples(samples))
        assert trace.output_ints("DOUT") == fir_reference(spec, samples)

    def test_fir_impulse_response_reads_coefficients(self, tiny_fir,
                                                     tiny_fir_compiled):
        _netlist, spec, _top, _components = tiny_fir
        amplitude = 1
        samples = [amplitude] + [0] * (spec.taps + 1)
        trace = Simulator(tiny_fir_compiled).run(stimulus_from_samples(samples))
        outputs = trace.output_ints("DOUT")
        assert outputs[:spec.taps] == [c * amplitude
                                       for c in spec.coefficients]

    def test_fir_flat_is_valid(self, tiny_fir_flat):
        assert validate_definition(tiny_fir_flat).ok

    def test_scaled_spec_rejects_bad_width(self):
        with pytest.raises(ValueError):
            FirSpec(coefficients=(120, 120), data_width=9, output_width=8)

    def test_duplicate_design_name_rejected(self, tiny_fir):
        netlist, spec, _top, _components = tiny_fir
        with pytest.raises(Exception):
            build_fir(netlist, spec)

    def test_single_tap_filter(self):
        netlist = Netlist("t")
        spec = FirSpec(coefficients=(3,), data_width=4, output_width=7,
                       name="single")
        top, components = build_fir(netlist, spec)
        assert not components.adders and not components.registers
        compiled = CompiledDesign(flatten(netlist, top))
        samples = [1, -2, 5]
        trace = Simulator(compiled).run(stimulus_from_samples(samples))
        assert trace.output_ints("DOUT") == [3, -6, 15]
