"""Explore the voter-partition design space for a custom design.

The paper's conclusion — "there is an optimal logic partition for each
circuit" — turns voter placement into a design-space exploration problem.
This example shows the supporting tooling on the FIR filter:

* sweep voter granularities analytically (fast, no fault injection);
* print the Pareto front of (defeat probability, voter area);
* confirm the analytical picture with the ``partition-shortlist``
  pipeline scenario, which implements the Pareto-optimal candidates and
  measures them with fault-injection campaigns.

Run with ``python examples/partition_exploration.py``; set
``REPRO_FLOW_CACHE`` to reuse place-and-route artifacts across runs.
"""

import os

from repro import run_scenario
from repro.core import (EveryKth, NoPartition, pareto_front,
                        sweep_partitions)
from repro.experiments import build_design_suite


def main() -> None:
    suite = build_design_suite("smoke")
    netlist, source = suite.netlist, suite.source

    print("analytical sweep of voter granularities "
          "(every k-th component voted):")
    sweep = sweep_partitions(netlist, source,
                             strategies=[EveryKth(k) for k in (1, 2, 3, 5)]
                             + [NoPartition()])
    for candidate in sweep.candidates:
        row = candidate.summary_row()
        print(f"  {row['partition']:10s}: {row['voters']:4d} voters, "
              f"{row['regions']:3d} regions/domain, "
              f"defeat probability {row['defeat_probability']:.4f}")
    print(f"analytical optimum (ignoring voter cost): "
          f"{sweep.best.strategy.describe()}")

    front = pareto_front(sweep.candidates)
    print("\nPareto front (defeat probability vs voter area):")
    for candidate in front:
        print(f"  {candidate.strategy.describe():10s}: "
              f"{candidate.voter_area_luts:4d} voter LUTs, "
              f"p = {candidate.defeat_probability:.4f}")

    print("\nconfirming the shortlist with measured campaigns "
          "(the 'partition-shortlist' pipeline scenario):")
    report = run_scenario("partition-shortlist", scale="smoke",
                          flow_cache=os.environ.get("REPRO_FLOW_CACHE"))
    for name, entry in report["designs"].items():
        campaign = entry["campaign"]
        implementation = entry["implementation"]
        print(f"  {name:28s}: {campaign['wrong_percent']:5.2f}% wrong "
              f"answers ({implementation['slices']} slices, "
              f"backend {campaign['backend']})")


if __name__ == "__main__":
    main()
