"""``python -m repro`` — the scenario pipeline command line.

.. code-block:: console

    $ python -m repro list
    $ python -m repro run table3-fir --scale fast
    $ python -m repro run upset-matrix --scale smoke --backend vector \\
          --flow-cache .flow-cache --jobs 4 --json --output report.json
    $ python -m repro serve --cache-tier .repro-tier
    $ python -m repro submit table3-fir --scale fast --output report.json

``run`` executes one registered scenario through the pipeline engine and
prints its report as Markdown (default) or JSON (``--json``); ``--output``
additionally writes the JSON report to a file, so CI can both gate on it
and archive it.  Every knob falls back to the scenario's own default.

``serve`` starts the campaign service (an HTTP job queue over the shared
warm-cache tier, sharding campaigns across worker processes); ``submit``
posts one scenario to a running service and prints the report JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .experiments.cli import (add_backend_argument, add_faults_argument,
                              add_flow_arguments, add_json_argument,
                              add_prefilter_argument, add_scale_argument,
                              add_upset_model_argument)
from .pipeline import render_markdown
from .scenarios import list_scenarios, run_scenario


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    commands = parser.add_subparsers(dest="command", required=True)

    runner = commands.add_parser(
        "run", help="run a registered scenario through the pipeline",
        description="Run one scenario; every omitted knob uses the "
                    "scenario's default.")
    runner.add_argument("scenario", help="scenario id (see 'repro list')")
    add_scale_argument(runner, default=None)
    add_backend_argument(runner, default=None)
    add_upset_model_argument(runner, default=None)
    add_prefilter_argument(runner, default=None)
    add_faults_argument(runner)
    runner.add_argument("--seed", type=int, default=None,
                        help="fault-sampling seed (default: the "
                             "scenario's)")
    runner.add_argument("--design", action="append", dest="designs",
                        metavar="NAME", default=None,
                        help="restrict to one design version (repeatable)")
    runner.add_argument("--repeat", type=int, default=1, metavar="N",
                        help="run the scenario N times in-process and "
                             "report the last (warm-cache) run "
                             "(default: 1)")
    add_flow_arguments(runner)
    runner.add_argument("--progress", action="store_true",
                        help="print per-design campaign progress to stderr")
    add_json_argument(runner)
    runner.add_argument("--output", metavar="FILE", default=None,
                        help="also write the JSON report to FILE")

    lister = commands.add_parser(
        "list", help="list the registered scenarios")
    add_json_argument(lister)

    server = commands.add_parser(
        "serve", help="start the campaign service (HTTP job runner)",
        description="Run the campaign-as-a-service orchestrator: an HTTP "
                    "job queue sharding campaigns across worker processes "
                    "over a shared warm-cache tier.")
    server.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    server.add_argument("--port", type=int, default=8750,
                        help="bind port; 0 picks a free one (default: 8750)")
    server.add_argument("--cache-tier", metavar="DIR",
                        default=".repro-tier",
                        help="shared warm-cache tier directory "
                             "(default: .repro-tier)")
    server.add_argument("--tier-max-bytes", type=int, default=None,
                        metavar="N",
                        help="cache-tier eviction budget in bytes "
                             "(default: 512 MiB)")
    server.add_argument("--max-parallel", type=int, default=2, metavar="N",
                        help="concurrently executing jobs (default: 2)")
    server.add_argument("--backend", default="sharded",
                        help="default campaign backend for submissions "
                             "that do not pin one (default: sharded)")
    server.add_argument("--verbose", action="store_true",
                        help="log every HTTP request to stderr")

    submitter = commands.add_parser(
        "submit", help="submit a job to a running campaign service",
        description="Submit one scenario to 'repro serve' and (by "
                    "default) wait for the report.")
    submitter.add_argument("scenario", help="scenario id (see 'repro list')")
    submitter.add_argument("--url", default="http://127.0.0.1:8750",
                           help="service base URL "
                                "(default: http://127.0.0.1:8750)")
    add_scale_argument(submitter, default=None)
    add_backend_argument(submitter, default=None)
    add_upset_model_argument(submitter, default=None)
    add_prefilter_argument(submitter, default=None)
    add_faults_argument(submitter)
    submitter.add_argument("--seed", type=int, default=None,
                           help="fault-sampling seed (default: the "
                                "scenario's)")
    submitter.add_argument("--design", action="append", dest="designs",
                           metavar="NAME", default=None,
                           help="restrict to one design version "
                                "(repeatable)")
    submitter.add_argument("--no-wait", action="store_true",
                           help="return the job id immediately instead of "
                                "waiting for the report")
    submitter.add_argument("--timeout", type=float, default=3600.0,
                           metavar="SECONDS",
                           help="how long to wait for the report "
                                "(default: 3600)")
    submitter.add_argument("--timeout-s", type=float, default=None,
                           metavar="SECONDS", dest="timeout_s",
                           help="server-side deadline for the job itself "
                                "(queue wait included); the service "
                                "cancels the job when it expires "
                                "(default: unbounded)")
    submitter.add_argument("--output", metavar="FILE", default=None,
                           help="also write the JSON report to FILE")
    return parser


def _run(arguments: argparse.Namespace) -> int:
    report = run_scenario(
        arguments.scenario,
        scale=arguments.scale,
        backend=arguments.backend,
        upset_model=arguments.upset_model,
        num_faults=arguments.faults,
        prefilter=arguments.prefilter,
        seed=arguments.seed,
        designs=arguments.designs,
        jobs=arguments.jobs,
        flow_cache=arguments.flow_cache,
        anneal_partitions=arguments.partitions,
        flow_threads=arguments.flow_threads,
        progress=arguments.progress,
        repeat=arguments.repeat,
    )
    payload = json.dumps(report, indent=2, default=str, sort_keys=True)
    if arguments.output:
        with open(arguments.output, "w") as handle:
            handle.write(payload + "\n")
        print(f"report written to {arguments.output}", file=sys.stderr)
    if arguments.json:
        print(payload)
    else:
        print(render_markdown(report))
    return 0


def _list(arguments: argparse.Namespace) -> int:
    scenarios = list_scenarios()
    if arguments.json:
        print(json.dumps([
            {
                "id": scenario.id,
                "title": scenario.title,
                "description": scenario.description,
                "scale": scenario.scale,
                "designs": list(scenario.designs),
                "backend": scenario.backend,
                "upset_model": scenario.upset_model,
                "stages": list(scenario.stages),
                "axes": [{"field": field, "values": list(values)}
                         for field, values in scenario.axes],
            }
            for scenario in scenarios], indent=2))
        return 0
    width = max(len(scenario.id) for scenario in scenarios)
    for scenario in scenarios:
        axes = "".join(
            f" [{field}: {', '.join(map(str, values))}]"
            for field, values in scenario.axes)
        print(f"{scenario.id.ljust(width)}  {scenario.title}{axes}")
    return 0


def _serve(arguments: argparse.Namespace) -> int:
    from .service import CampaignService, SharedCacheTier
    from .service.httpd import make_server

    tier = SharedCacheTier(arguments.cache_tier)
    if arguments.tier_max_bytes is not None:
        tier.max_bytes = arguments.tier_max_bytes
    service = CampaignService(tier=tier,
                              max_parallel=arguments.max_parallel,
                              default_backend=arguments.backend)
    service.start()
    server = make_server(service, host=arguments.host, port=arguments.port,
                         verbose=arguments.verbose)
    host, port = server.server_address[:2]
    print(f"campaign service listening on http://{host}:{port} "
          f"(tier: {tier.root}, backend: {arguments.backend})",
          file=sys.stderr, flush=True)

    # Graceful shutdown on SIGTERM/SIGINT: mark the HTTP surface as
    # draining (503 + Retry-After for new submissions), let in-flight
    # jobs settle, journal the clean-shutdown marker, then stop the
    # server.  The drain runs on its own thread because server.shutdown()
    # must not be called from the serve_forever() thread, and a signal
    # handler must return quickly.
    import signal
    import threading

    stop_once = threading.Event()

    def drain_and_stop() -> None:
        server.draining = True  # type: ignore[attr-defined]
        service.stop()
        server.shutdown()

    def handle_signal(signum: int, _frame: object) -> None:
        if stop_once.is_set():
            return
        stop_once.set()
        print(f"received signal {signum}; draining", file=sys.stderr,
              flush=True)
        threading.Thread(target=drain_and_stop, daemon=True,
                         name="repro-drain").start()

    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, handle_signal)
        except ValueError:
            pass  # non-main thread (embedded use) — skip the handlers

    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.shutdown()
        service.stop()
    return 0


def _submit(arguments: argparse.Namespace) -> int:
    from .service.httpd import fetch_report, submit_job, wait_for_job

    spec = {"scenario": arguments.scenario}
    for field in ("scale", "backend", "upset_model", "prefilter",
                  "seed", "designs"):
        value = getattr(arguments, field)
        if value is not None:
            spec[field] = value
    if arguments.faults is not None:
        spec["num_faults"] = arguments.faults
    if arguments.timeout_s is not None:
        spec["timeout_s"] = arguments.timeout_s

    snapshot = submit_job(arguments.url, spec)
    state = "joined in-flight job" if snapshot.get("coalesced") \
        else "submitted"
    print(f"{state} {snapshot['id']} ({snapshot['state']})",
          file=sys.stderr, flush=True)
    if arguments.no_wait:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    final = wait_for_job(arguments.url, snapshot["id"],
                         timeout=arguments.timeout)
    if final["state"] != "done":
        print(f"job {final['id']} failed: {final.get('error')}",
              file=sys.stderr)
        return 1
    report = fetch_report(arguments.url, snapshot["id"])
    payload = json.dumps(report, indent=2, default=str, sort_keys=True)
    if arguments.output:
        with open(arguments.output, "w") as handle:
            handle.write(payload + "\n")
        print(f"report written to {arguments.output}", file=sys.stderr)
    print(payload)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    arguments = _build_parser().parse_args(argv)
    if arguments.command == "run":
        return _run(arguments)
    if arguments.command == "serve":
        return _serve(arguments)
    if arguments.command == "submit":
        return _submit(arguments)
    return _list(arguments)


if __name__ == "__main__":
    raise SystemExit(main())
