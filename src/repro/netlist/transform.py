"""Netlist transformations: cloning, uniquification and flattening."""

from __future__ import annotations

from typing import Dict, Optional, Set

from .ir import (Definition, InstancePin, Library, Net, Netlist, NetlistError, TopPin)

#: Separator used when composing hierarchical names during flattening.
HIER_SEP = "/"


def clone_definition(definition: Definition, new_name: str,
                     library: Optional[Library] = None) -> Definition:
    """Create a structural copy of *definition* under a new name.

    Child instances keep referencing the *same* child definitions (shallow
    with respect to hierarchy); ports, nets, instances, connections and
    properties are copied.
    """
    target_library = library if library is not None else definition.library
    clone = Definition(new_name, library=None, is_primitive=definition.is_primitive)
    clone.properties = dict(definition.properties)

    for port in definition.ports.values():
        clone.add_port(port.name, port.direction, port.width)

    for inst in definition.instances.values():
        new_inst = clone.add_instance(inst.reference, inst.name)
        new_inst.properties = dict(inst.properties)

    for net in definition.nets.values():
        new_net = clone.add_net(net.name)
        new_net.properties = dict(net.properties)
        for pin in net.pins:
            if isinstance(pin, InstancePin):
                new_inst = clone.instances[pin.instance.name]
                new_net.connect(new_inst.pin(pin.port_name, pin.index))
            elif isinstance(pin, TopPin):
                new_net.connect(clone.top_pin(pin.port_name, pin.index))
            else:  # pragma: no cover - defensive
                raise NetlistError(f"cannot clone unknown pin type {pin!r}")

    if target_library is not None:
        target_library.adopt(clone)
    return clone


def uniquify(netlist: Netlist, definition: Optional[Definition] = None,
             _seen: Optional[Set[int]] = None) -> None:
    """Ensure every non-primitive definition is instantiated at most once.

    Definitions instantiated multiple times are cloned so each instantiation
    points at a private copy.  This makes per-instance edits (such as TMR
    domain tagging) safe.
    """
    root = definition if definition is not None else netlist.top
    if root is None:
        raise NetlistError("netlist has no top definition to uniquify")
    if _seen is None:
        _seen = set()

    use_counts: Dict[int, int] = {}

    def count_uses(current: Definition) -> None:
        for inst in current.instances.values():
            ref = inst.reference
            if ref.is_primitive:
                continue
            use_counts[id(ref)] = use_counts.get(id(ref), 0) + 1
            count_uses(ref)

    count_uses(root)

    def rewrite(current: Definition) -> None:
        if id(current) in _seen:
            return
        _seen.add(id(current))
        for inst in list(current.instances.values()):
            ref = inst.reference
            if ref.is_primitive:
                continue
            if use_counts.get(id(ref), 0) > 1:
                use_counts[id(ref)] -= 1
                library = ref.library
                base = ref.name
                counter = 1
                new_name = f"{base}_uniq{counter}"
                while library is not None and new_name in library:
                    counter += 1
                    new_name = f"{base}_uniq{counter}"
                new_ref = clone_definition(ref, new_name, library)
                inst.reference = new_ref
                use_counts[id(new_ref)] = 1
            rewrite(inst.reference)

    rewrite(root)


def flatten(netlist: Netlist, top: Optional[Definition] = None,
            flat_name: Optional[str] = None) -> Definition:
    """Produce a flat definition containing only primitive instances.

    Hierarchical instance and net names are composed with ``/`` so that
    ``tap3/adder/fa_2`` identifies the full path of a leaf cell.  Net
    properties and instance properties are propagated; a property set on a
    hierarchical instance (for example a TMR ``domain`` tag) is inherited by
    every leaf cell flattened out of it unless the leaf overrides it.

    The flat definition is added to a ``flat`` library of *netlist* and
    returned; the original hierarchy is left untouched.
    """
    source_top = top if top is not None else netlist.top
    if source_top is None:
        raise NetlistError("netlist has no top definition to flatten")
    name = flat_name if flat_name is not None else f"{source_top.name}_flat"

    flat_library = netlist.get_library("flat")
    if name in flat_library:
        raise NetlistError(f"flat library already contains {name!r}")
    flat = flat_library.add_definition(name)
    flat.properties = dict(source_top.properties)

    for port in source_top.ports.values():
        flat.add_port(port.name, port.direction, port.width)

    # Map from (instance path, original net) to flat net.  The path is part
    # of the key because several instances of the same definition share the
    # same underlying Net objects.
    net_map: Dict[tuple, Net] = {}

    def flat_net_for(path: str, net: Net) -> Net:
        key = (path, id(net))
        mapped = net_map.get(key)
        if mapped is None:
            flat_name_ = net.name if not path else f"{path}{HIER_SEP}{net.name}"
            if flat_name_ in flat.nets:
                flat_name_ = flat.make_unique_name(flat_name_)
            mapped = flat.add_net(flat_name_)
            mapped.properties = dict(net.properties)
            net_map[key] = mapped
        return mapped

    def expand(current: Definition, path: str,
               boundary: Dict[tuple, Net],
               inherited: Dict[str, object]) -> None:
        """Expand *current* in place.

        *boundary* maps (port_name, index) of *current* to the flat net that
        the parent connected to that port bit.
        """
        # Local nets of this level map either to the boundary net (if the
        # local net touches a top pin of this definition) or to a new flat net.
        local_map: Dict[int, Net] = {}

        for net in current.nets.values():
            boundary_net: Optional[Net] = None
            for pin in net.top_pins():
                candidate = boundary.get((pin.port_name, pin.index))
                if candidate is not None:
                    if boundary_net is None:
                        boundary_net = candidate
                    elif boundary_net is not candidate:
                        # Two boundary nets joined inside: merge by aliasing
                        # all pins of one onto the other.
                        _merge_nets(boundary_net, candidate)
            if boundary_net is not None:
                local_map[id(net)] = boundary_net
                # Propagate interesting net properties outward.
                for key, value in net.properties.items():
                    boundary_net.properties.setdefault(key, value)
            else:
                local_map[id(net)] = flat_net_for(path, net)

        for inst in current.instances.values():
            inst_path = inst.name if not path else f"{path}{HIER_SEP}{inst.name}"
            merged_props = dict(inherited)
            merged_props.update(inst.properties)
            if inst.is_primitive:
                new_inst = flat.add_instance(inst.reference, inst_path)
                new_inst.properties = merged_props
                for pin in inst.pins():
                    if pin.net is None:
                        continue
                    flat_net = local_map[id(pin.net)]
                    flat_net.connect(new_inst.pin(pin.port_name, pin.index))
            else:
                child_boundary: Dict[tuple, Net] = {}
                for pin in inst.pins():
                    if pin.net is None:
                        continue
                    child_boundary[(pin.port_name, pin.index)] = \
                        local_map[id(pin.net)]
                expand(inst.reference, inst_path, child_boundary, merged_props)

    # Top-level boundary: create flat nets attached to the flat top pins.
    top_boundary: Dict[tuple, Net] = {}
    for port in source_top.ports.values():
        for bit in port.bits():
            net = flat.add_net(_port_net_name(port.name, bit, port.width))
            net.connect(flat.top_pin(port.name, bit))
            top_boundary[(port.name, bit)] = net

    expand(source_top, "", top_boundary, {})

    # Drop nets that ended up with no pins (created then merged away).
    for net in [n for n in flat.nets.values() if not n.pins]:
        flat.remove_net(net)

    flat_library_netlist = netlist
    if flat_library_netlist.top is source_top:
        # Keep the hierarchical top as the netlist top; callers that want the
        # flat version receive it as the return value.
        pass
    return flat


def _port_net_name(port_name: str, bit: int, width: int) -> str:
    return port_name if width == 1 else f"{port_name}[{bit}]"


def _merge_nets(keep: Net, merge: Net) -> None:
    """Move every pin of *merge* onto *keep* and delete *merge*."""
    if keep is merge:
        return
    for pin in list(merge.pins):
        keep.connect(pin)
    for key, value in merge.properties.items():
        keep.properties.setdefault(key, value)
    if merge.definition is not None:
        merge.definition.remove_net(merge)


def remove_unconnected_instances(definition: Definition) -> int:
    """Remove primitive instances none of whose pins are connected.

    Returns the number of instances removed.
    """
    removed = 0
    for inst in list(definition.instances.values()):
        pins = list(inst.pins())
        if pins and all(p.net is None for p in pins):
            definition.remove_instance(inst)
            removed += 1
        elif not pins:
            definition.remove_instance(inst)
            removed += 1
    return removed
