"""Legacy setup shim.

The project is fully described by ``pyproject.toml``; this file exists so the
package can also be installed in environments without network access or the
``wheel`` package (``python setup.py develop`` / ``pip install -e .
--no-use-pep517 --no-build-isolation``).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description=("Reproduction of 'On the Optimal Design of Triple Modular "
                 "Redundancy Logic for SRAM-based FPGAs' (DATE 2005)"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["networkx"],
    # numpy is optional: it only powers the vectorized fault-simulation
    # backend (--backend numpy).  Every other backend is pure python.
    extras_require={"fast": ["numpy"]},
    entry_points={
        "console_scripts": [
            "repro = repro.__main__:main",
        ],
    },
)
