"""Tests for the bit-parallel (PPSFP-style) lane simulation kernel.

Three layers of evidence that the ``(v, k)`` two-mask encoding is exact:

* the folded LUT mux trees agree with :func:`repro.cells.logic.lut_eval`
  for every INIT (exhaustively up to LUT3, sampled LUT4) over every
  three-valued input combination;
* random multi-lane words evaluate each lane exactly as the scalar
  three-valued operators do;
* whole-design sweeps (full and cone mode, with overlays) demux lane by
  lane into the same traces the scalar :class:`Simulator` produces.
"""

import itertools
import random

import pytest

from repro.cells import logic
from repro.sim import (CompiledDesign, FaultOverlay, Simulator,
                       SourceOverride, compile_vector_program,
                       simulate_lanes)
from repro.sim import bitparallel as bp


def _pack_lanes(values):
    """Pack a list of per-lane three-valued values into (v, k) words."""
    v = k = 0
    for lane, value in enumerate(values):
        if value == logic.ONE:
            v |= 1 << lane
        if value != logic.UNKNOWN:
            k |= 1 << lane
    return v, k


def _unpack_lane(v, k, lane):
    if not (k >> lane) & 1:
        return logic.UNKNOWN
    return (v >> lane) & 1


def _tree_entry(init, num_inputs):
    words = [-1 if (init >> address) & 1 else 0
             for address in range(1 << num_inputs)]
    tree = bp._lut_tree(words, num_inputs, -1)
    tree = bp._remap_leaves(tree, list(range(num_inputs)))
    return bp._specialize(tree, num_inputs, 0)


def _eval_entry(entry, input_words, all_mask):
    num_inputs = len(input_words)
    net_v = [word[0] for word in input_words] + [0]
    net_k = [word[1] for word in input_words] + [0]
    bp._evaluate_pass([entry], net_v, net_k, all_mask)
    return net_v[num_inputs], net_k[num_inputs]


class TestLutTrees:
    @pytest.mark.parametrize("num_inputs", [1, 2, 3])
    def test_exhaustive_against_lut_eval(self, num_inputs):
        combos = list(itertools.product(logic.VALUES, repeat=num_inputs))
        for init in range(1 << (1 << num_inputs)):
            entry = _tree_entry(init, num_inputs)
            for inputs in combos:
                v, k = _eval_entry(entry, [_pack_lanes([value])
                                           for value in inputs], 1)
                assert _unpack_lane(v, k, 0) == \
                    logic.lut_eval(init, list(inputs), num_inputs), \
                    (hex(init), inputs)

    def test_sampled_lut4_against_lut_eval(self):
        rng = random.Random(2005)
        combos = list(itertools.product(logic.VALUES, repeat=4))
        for _ in range(150):
            init = rng.getrandbits(16)
            entry = _tree_entry(init, 4)
            for inputs in combos:
                v, k = _eval_entry(entry, [_pack_lanes([value])
                                           for value in inputs], 1)
                assert _unpack_lane(v, k, 0) == \
                    logic.lut_eval(init, list(inputs), 4), \
                    (hex(init), inputs)

    def test_lanes_are_independent(self):
        rng = random.Random(7)
        lanes = 61  # prime-ish width, exercises high lane bits
        all_mask = (1 << lanes) - 1
        for _ in range(60):
            num_inputs = rng.randint(1, 4)
            init = rng.getrandbits(1 << num_inputs)
            entry = _tree_entry(init, num_inputs)
            columns = [[rng.choice(logic.VALUES) for _ in range(lanes)]
                       for _ in range(num_inputs)]
            v, k = _eval_entry(entry, [_pack_lanes(column)
                                       for column in columns], all_mask)
            assert v & ~k & all_mask == 0  # canonical: X lanes carry v=0
            for lane in range(lanes):
                inputs = [column[lane] for column in columns]
                assert _unpack_lane(v, k, lane) == \
                    logic.lut_eval(init, inputs, num_inputs)

    def test_common_gates_fold_to_specialized_entries(self):
        # XOR2 (0x6), AND2 (0x8), OR2 (0xE) must bypass the postfix machine.
        assert _tree_entry(0x6, 2).kind == bp._E_XOR2
        assert _tree_entry(0x8, 2).kind == bp._E_AND2
        assert _tree_entry(0xE, 2).kind == bp._E_OR2
        assert _tree_entry(0x9, 2).kind == bp._E_XNOR2
        assert _tree_entry(0x2, 1).kind == bp._E_COPY      # buffer
        assert _tree_entry(0x1, 1).kind == bp._E_NOT       # inverter
        assert _tree_entry(0x0, 2).kind == bp._E_CONST0
        assert _tree_entry(0xF, 2).kind == bp._E_CONST1
        # XOR3 (parity) folds into a chain, not a 16-op mux cascade.
        entry = _tree_entry(0x96, 3)
        assert entry.kind == bp._E_TREE and len(entry.ops) <= 5


class TestBlendLanes:
    def test_short_blend_matches_resolve_drivers(self):
        rng = random.Random(11)
        lanes = 33
        all_mask = (1 << lanes) - 1
        for _ in range(40):
            a = [rng.choice(logic.VALUES) for _ in range(lanes)]
            b = [rng.choice(logic.VALUES) for _ in range(lanes)]
            net_v = [0, 0]
            net_k = [0, 0]
            net_v[0], net_k[0] = _pack_lanes(a)
            net_v[1], net_k[1] = _pack_lanes(b)
            for blend, reference in (
                    ("short", lambda x, y: logic.resolve_drivers([x, y])),
                    ("wired_and", logic.and_),
                    ("wired_or", logic.or_),
                    ("and_not",
                     lambda x, y: logic.and_(x, logic.not_(y)))):
                override = SourceOverride.blend_of(0, 1, blend)
                v, k = bp._resolve_lanes(override, net_v, net_k, all_mask)
                assert v & ~k & all_mask == 0
                for lane in range(lanes):
                    assert _unpack_lane(v, k, lane) == \
                        reference(a[lane], b[lane]), (blend, lane)


class TestWholeDesignSweeps:
    def _stimulus(self, design, cycles, seed):
        rng = random.Random(seed)
        stimulus = []
        for _ in range(cycles):
            cycle = {}
            for name, binding in design.inputs.items():
                if name.upper().startswith("CLK"):
                    continue
                cycle[name] = rng.getrandbits(binding.width)
            stimulus.append(cycle)
        return stimulus

    def _overlays(self, design):
        """A heterogeneous shard: INIT flip, pin overrides, FF upsets."""
        lut = next(g for g in design.gates if g.kind == 0 and g.num_inputs)
        flip_flop = design.flip_flops[0]
        overlays = []

        flipped = FaultOverlay(description="LUT INIT flip")
        flipped.lut_init_overrides[lut.index] = lut.init ^ 1
        flipped.seed_nets = [lut.output_net]
        overlays.append(flipped)

        floating = FaultOverlay(description="open on a LUT input")
        floating.gate_pin_overrides[(lut.index, 0)] = \
            SourceOverride.floating()
        floating.seed_nets = [n for n in lut.input_nets if n >= 0][:1]
        overlays.append(floating)

        stuck = FaultOverlay(description="FF power-up flip")
        stuck.ff_init_overrides[flip_flop.index] = \
            1 - flip_flop.init_value
        stuck.seed_nets = [flip_flop.q_net]
        overlays.append(stuck)

        detached = FaultOverlay(description="FF data detached")
        detached.ff_pin_overrides[(flip_flop.index, "D")] = \
            SourceOverride.floating()
        detached.seed_nets = [flip_flop.q_net]
        overlays.append(detached)
        return overlays

    def _assert_lanes_match_scalar(self, design, overlays, stimulus,
                                   golden, cone_of):
        program = compile_vector_program(design)
        result = simulate_lanes(
            program, overlays, stimulus, golden,
            passes=max(o.required_passes() for o in overlays),
            cone=cone_of, width=max(len(overlays), 7),
            record_lane_outputs=True)
        for lane, overlay in enumerate(overlays):
            simulator = Simulator(design, overlay)
            if cone_of is not None:
                trace = simulator.run(stimulus, golden=golden,
                                      cone=cone_of)
            else:
                trace = simulator.run(stimulus)
            for cycle, expected in enumerate(trace.outputs):
                sampled = result.lane_outputs[cycle]
                for port, bits in expected.items():
                    got = [_unpack_lane(v, k, lane)
                           for v, k in sampled[port]]
                    assert got == bits, (overlay.description, cycle, port)

    def test_full_mode_matches_scalar_per_lane(self, tiny_fir_compiled):
        design = tiny_fir_compiled
        stimulus = self._stimulus(design, 6, seed=21)
        golden = Simulator(design).run(stimulus, record_nets=True)
        overlays = self._overlays(design)
        self._assert_lanes_match_scalar(design, overlays, stimulus, golden,
                                        cone_of=None)

    def test_cone_mode_matches_scalar_per_lane(self, tiny_fir_compiled):
        design = tiny_fir_compiled
        stimulus = self._stimulus(design, 6, seed=22)
        golden = Simulator(design).run(stimulus, record_nets=True)
        overlays = [o for o in self._overlays(design)
                    if o.required_passes() == 1]
        seeds = sorted({net for o in overlays for net in o.seed_nets})
        cone = design.fault_cone(seeds)
        self._assert_lanes_match_scalar(design, overlays, stimulus, golden,
                                        cone_of=cone)

    def test_ghost_lanes_replay_golden(self, tiny_fir_compiled):
        # Lanes beyond the shard population (width > len(overlays)) and
        # an empty overlay lane must both reproduce the golden outputs.
        design = tiny_fir_compiled
        stimulus = self._stimulus(design, 5, seed=23)
        golden = Simulator(design).run(stimulus, record_nets=True)
        program = compile_vector_program(design)
        result = simulate_lanes(program, [FaultOverlay()], stimulus,
                                golden, passes=1, width=9,
                                record_lane_outputs=True)
        assert result.outcomes[0].wrong_answer is False
        assert result.outcomes[0].first_mismatch_cycle is None
        for cycle, expected in enumerate(golden.outputs):
            sampled = result.lane_outputs[cycle]
            for port, bits in expected.items():
                for lane in (0, 8):
                    got = [_unpack_lane(v, k, lane)
                           for v, k in sampled[port]]
                    assert got == bits

    def test_same_lut_adjacent_init_faults_share_a_shard(
            self, tiny_fir_compiled):
        # Two lanes flipping *adjacent* truth-table bits of one LUT build
        # mixed per-lane constant entries at Shannon level 0; the fold
        # must complement them as lane words (regression: this used to
        # trip the "constants are folded before negation" assertion).
        design = tiny_fir_compiled
        lut = next(g for g in design.gates
                   if g.kind == 0 and g.num_inputs >= 2)
        overlays = []
        for table_bit in range(4):
            overlay = FaultOverlay(description=f"INIT bit {table_bit}")
            overlay.lut_init_overrides[lut.index] = \
                lut.init ^ (1 << table_bit)
            overlay.seed_nets = [lut.output_net]
            overlays.append(overlay)
        stimulus = self._stimulus(design, 6, seed=24)
        golden = Simulator(design).run(stimulus, record_nets=True)
        self._assert_lanes_match_scalar(design, overlays, stimulus, golden,
                                        cone_of=None)

    def test_width_must_hold_all_lanes(self, tiny_fir_compiled):
        program = compile_vector_program(tiny_fir_compiled)
        golden = Simulator(tiny_fir_compiled).run([{}], record_nets=True)
        with pytest.raises(ValueError):
            simulate_lanes(program, [FaultOverlay(), FaultOverlay()],
                           [{}], golden, width=1)
