"""D-series checkers: determinism invariants.

Everything a campaign emits — fingerprints, stable reports, shard
schedules, pickled artefacts — must be bit-identical across processes,
platforms and ``PYTHONHASHSEED``.  These rules flag the classic ways
that promise silently erodes: filesystem enumeration order, set
iteration order, salted ``hash()``, wall-clock reads and the global
random stream.
"""

from __future__ import annotations

import ast
from typing import List, Set

from .context import ModuleContext
from .model import Finding, LintConfig, RULES

#: Calls whose result order is filesystem-dependent.
_FS_CALLS = {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
#: Method names with the same property on Path-like objects.
_FS_METHODS = {"glob", "rglob", "iterdir"}

#: Wall-clock reads (time.monotonic/perf_counter are deliberately fine:
#: they measure intervals, never label results).
_WALLCLOCK = {
    "time.time", "time.time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

#: Module-global random draws (random.Random(seed) is the sanctioned
#: escape hatch; repro.faults.seeds.substream the preferred one).
_GLOBAL_RANDOM = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "seed", "getrandbits", "gauss", "betavariate",
    "expovariate", "normalvariate",
}

#: Ordered-sequence constructors (D102 sinks).
_ORDERED_SINKS = {"list", "tuple", "enumerate"}

#: Consumers whose result does not depend on iteration order.  ``sum``
#: is deliberately absent: float addition is not associative, so a sum
#: over a set is hash-order-dependent in the low bits — integer sums
#: must be waived with a justification saying so.
_ORDER_FREE_SINKS = {
    "sorted", "set", "frozenset", "min", "max", "any", "all", "len",
}


def _finding(ctx: ModuleContext, rule: str, node: ast.AST,
             message: str) -> Finding:
    return Finding(rule=rule, path=ctx.rel_path, line=node.lineno,
                   col=node.col_offset, scope=ctx.qualname(node),
                   message=message, hint=RULES[rule].hint)


def _is_set_expr(ctx: ModuleContext, node: ast.AST,
                 set_names: Set[str] = frozenset()) -> bool:
    """Structurally a set/frozenset value (unordered iteration)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        dotted = ctx.dotted(node.func)
        return dotted in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return (_is_set_expr(ctx, node.left, set_names)
                or _is_set_expr(ctx, node.right, set_names))
    return False


def _set_bound_names(ctx: ModuleContext) -> Set[str]:
    """Names that are *only ever* assigned set expressions.

    Deliberately conservative single-pass dataflow: a name that is also
    bound to anything non-set anywhere in the module (including loop
    targets, parameters stay unknown) drops out, so a false positive
    requires the name to genuinely always hold a set.
    """
    bound: Set[str] = set()
    tainted: Set[str] = set()
    for node in ast.walk(ctx.tree):
        targets: List[ast.expr] = []
        value = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            targets, value = [node.target], None
        elif isinstance(node, ast.AugAssign):
            targets, value = [node.target], None
        for target in targets:
            for name_node in ast.walk(target):
                if not isinstance(name_node, ast.Name):
                    continue
                if value is not None and target is name_node \
                        and _is_set_expr(ctx, value):
                    bound.add(name_node.id)
                else:
                    tainted.add(name_node.id)
    return bound - tainted


def _loop_produces_sequence(loop: ast.For) -> bool:
    """The loop body appends/extends/yields — it builds ordered output."""
    for node in ast.walk(loop):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in ("append", "extend"):
            return True
    return False


def check_determinism(ctx: ModuleContext,
                      config: LintConfig) -> List[Finding]:
    findings: List[Finding] = []
    set_names = _set_bound_names(ctx)
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            findings.extend(_check_call(ctx, config, node, set_names))
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp)) \
                and config.enabled("D102"):
            iterand = node.generators[0].iter
            if _is_set_expr(ctx, iterand, set_names) \
                    and ctx.consuming_call(node) not in _ORDER_FREE_SINKS \
                    and not ctx.inside_sorted(iterand):
                findings.append(_finding(
                    ctx, "D102", node,
                    "comprehension iterates a set into an ordered "
                    "sequence; the element order is hash-seed dependent"))
        elif isinstance(node, ast.For) and config.enabled("D102"):
            if _is_set_expr(ctx, node.iter, set_names) \
                    and not ctx.inside_sorted(node.iter) \
                    and _loop_produces_sequence(node):
                findings.append(_finding(
                    ctx, "D102", node,
                    "loop iterates a set while building an ordered "
                    "sequence; the element order is hash-seed dependent"))
    return findings


def _check_call(ctx: ModuleContext, config: LintConfig, node: ast.Call,
                set_names: Set[str] = frozenset()) -> List[Finding]:
    findings: List[Finding] = []
    dotted = ctx.dotted(node.func)
    if dotted is None:
        return findings

    if config.enabled("D101"):
        is_fs = dotted in _FS_CALLS or (
            "." in dotted and dotted.rsplit(".", 1)[1] in _FS_METHODS
            and dotted not in ("glob.glob",))
        if is_fs and not ctx.inside_sorted(node):
            findings.append(_finding(
                ctx, "D101", node,
                f"{dotted}(...) yields filesystem order; wrap in "
                "sorted(...) before the result can flow anywhere "
                "order-sensitive"))

    if config.enabled("D102") and dotted in _ORDERED_SINKS and node.args:
        if _is_set_expr(ctx, node.args[0], set_names):
            findings.append(_finding(
                ctx, "D102", node,
                f"{dotted}() over a set bakes hash-seed-dependent "
                "order into an ordered sequence"))

    if config.enabled("D103") and dotted == "hash":
        findings.append(_finding(
            ctx, "D103", node,
            "builtin hash() is salted per process under "
            "PYTHONHASHSEED; results derived from it are not "
            "reproducible"))

    if config.enabled("D104") and dotted in _WALLCLOCK:
        findings.append(_finding(
            ctx, "D104", node,
            f"{dotted}() reads the wall clock in a result-producing "
            "module"))

    if config.enabled("D105") and "." in dotted:
        root, leaf = dotted.split(".", 1)
        if root == "random" and leaf in _GLOBAL_RANDOM:
            findings.append(_finding(
                ctx, "D105", node,
                f"random.{leaf}() draws from the module-global stream; "
                "use the documented substream contract"))
    return findings
