"""Experiment driver for Table 2: area, bitstream composition, performance.

Running ``python -m repro.experiments.table2 --scale fast`` builds the five
filter versions, implements each on its device profile and prints the
Table 2 analogue next to the paper's reference numbers.  The driver is a
thin wrapper over the ``table2-fir`` scenario of the pipeline engine
(``python -m repro run table2-fir`` is the equivalent surface).
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Sequence

from ..pnr import Implementation
from ..pnr.artifacts import StoreLike
from .cli import experiment_parser
from .designs import DESIGN_ORDER, DesignSuite

# Re-exported for backward compatibility (historically defined here).


def run_table2(suite: Optional[DesignSuite] = None,
               implementations: Optional[Dict[str, Implementation]] = None,
               scale: str = "fast", jobs: int = 1,
               flow_cache: StoreLike = None,
               partitions: int = 1,
               flow_threads: Optional[int] = None
               ) -> Dict[str, Dict[str, object]]:
    """Compute the Table 2 analogue; returns one dict per design."""
    from ..pipeline import PipelineContext, pipeline_for, resources_analysis

    ctx = PipelineContext(
        scenario_id="table2-fir",
        scale=scale,
        designs=DESIGN_ORDER,
        jobs=jobs,
        flow_cache=flow_cache,
        anneal_partitions=partitions,
        flow_threads=flow_threads,
    )
    ctx.suite = suite
    ctx.implementations = implementations
    if implementations is not None:
        # Pre-built implementations are all the analysis needs — keep the
        # historical fast path that never builds the suite.
        ctx.designs = [name for name in DESIGN_ORDER
                       if name in implementations]
    else:
        pipeline_for(("build", "implement")).run(ctx)
    return resources_analysis(ctx)


def format_report(table: Dict[str, Dict[str, object]]) -> str:
    from ..faults.report import format_table

    rows = []
    for name in DESIGN_ORDER:
        if name not in table:
            continue
        entry = table[name]
        rows.append([
            name, entry["slices"], entry["routing_bits"], entry["lut_bits"],
            entry["ff_bits"], f"{entry['routing_fraction'] * 100:.1f}%",
            f"{entry['fmax_mhz']:.0f}",
            f"x{entry['area_overhead_vs_standard']:.2f}",
            entry["paper_slices"] if entry["paper_slices"] else "-",
            f"{entry['paper_fmax_mhz']:.0f}" if entry["paper_fmax_mhz"]
            else "-",
        ])
    return format_table(
        ["Design", "Slices", "Routing bits", "LUT bits", "FF bits",
         "Routing share", "Fmax (MHz)", "Area vs std",
         "Paper slices", "Paper Fmax"],
        rows, "Table 2 — resources and performance (measured vs paper)")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = experiment_parser(__doc__, backend_default=None)
    arguments = parser.parse_args(argv)

    if arguments.json:
        from ..pipeline import stable_report
        from ..scenarios import run_scenario

        report = run_scenario("table2-fir", scale=arguments.scale,
                              jobs=arguments.jobs,
                              flow_cache=arguments.flow_cache,
                              anneal_partitions=arguments.partitions,
                              flow_threads=arguments.flow_threads)
        print(json.dumps(stable_report(report), indent=2, default=str,
                         sort_keys=True))
        return 0

    table = run_table2(scale=arguments.scale, jobs=arguments.jobs,
                       flow_cache=arguments.flow_cache,
                       partitions=arguments.partitions,
                       flow_threads=arguments.flow_threads)
    print(format_report(table))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
