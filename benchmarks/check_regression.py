"""Guard the benchmarks against performance regressions.

Compares freshly measured benchmark reports against the baselines
committed at the repository root and fails (exit code 1) when a
normalized speedup regresses by more than the tolerance:

* ``BENCH_campaign.json`` — the best campaign backend's
  ``speedup_vs_seed_serial`` per design, plus — when the numpy backend
  was measured — its saturated-draw throughput speedup per design
  (ratio-compared against the baseline) and two *absolute* floors: the
  best design's saturated speedup must clear ``--numpy-min-speedup``
  (default 60x) and every numpy row's mean lane utilization must clear
  ``--numpy-utilization-floor`` (default 0.6);
* ``BENCH_flow.json`` (optional, via ``--flow-baseline/--flow-current``)
  — the implementation flow's total ``cold_speedup_vs_seed`` and
  ``warm_speedup_vs_seed``; when the report carries the
  ``parallel_cold`` section, the thread-identity bit is a hard gate and
  the threads=N speedup is held to ``--flow-parallel-min-speedup`` on
  multi-core runners; when it carries ``defeat_map_build``, the
  vectorized build must equal the flood (hard gate), ratio-track the
  in-run flood speedup, and clear ``--flow-map-min-speedup`` over the
  committed flood baselines;
* ``BENCH_predict.json`` (optional, via
  ``--predict-baseline/--predict-current``) — the static prefilter's
  per-design ``simulated_reduction`` (how many times fewer injections the
  campaign backends evaluate), a count ratio and therefore fully portable
  across machines;
* ``BENCH_service.json`` (optional, via
  ``--service-baseline/--service-current``) — the campaign service's
  ``warm_vs_cold_speedup`` (ratio-compared against the baseline and held
  to an absolute floor), the warm wave's tier hit rate and jobs/sec
  floors, the coalescing proof (identical submissions must dedup to
  one computation with bit-identical reports), and — when the baseline
  carries a ``recovery`` section — the crash-recovery gates
  (``--service-recovery-*``): journal replay must recover the crashed
  job, the resumed run must reload shard checkpoints and reproduce the
  uninterrupted report bit for bit, and the seeded worker kill must be
  absorbed by a supervised retry;
* pipeline-stage cache reuse (optional, via ``--pipeline-report``, one or
  more warm-run JSON reports from ``python -m repro run ... --repeat 2``)
  — the implement stage must be served entirely from the flow store and
  the campaign stage must hit the golden-trace/fault-effect cache; a cold
  stage on a warm run means a fingerprint or cache regression.

Absolute seconds are machine-dependent, so every comparison uses a
speedup over a seed replica measured on the *same* machine in the same
session, which makes the ratios portable across laptops and shared CI
runners.  A >30 % drop of a ratio means the code itself got slower, not
the hardware.

Usage::

    python benchmarks/check_regression.py \
        --baseline BENCH_campaign.json --current /tmp/BENCH_campaign.json \
        [--flow-baseline BENCH_flow.json --flow-current /tmp/BENCH_flow.json] \
        [--tolerance 0.30]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def best_speedups(payload: dict) -> dict:
    """{design: best speedup_vs_seed_serial over all backends}."""
    result = {}
    for design, row in payload.get("designs", {}).items():
        speedups = [backend.get("speedup_vs_seed_serial", 0.0)
                    for backend in row.get("backends", {}).values()]
        if speedups:
            result[design] = max(speedups)
    return result


def numpy_saturated_speedups(payload: dict) -> dict:
    """{design: numpy saturated-draw throughput speedup}.

    Empty for reports written before the numpy backend existed (or
    measured on a machine without numpy), which keeps the ratio
    comparison a no-op against old baselines.
    """
    result = {}
    for design, row in payload.get("designs", {}).items():
        saturated = row.get("numpy_saturated", {})
        if "speedup_vs_seed_serial_throughput" in saturated:
            result[design] = saturated["speedup_vs_seed_serial_throughput"]
    return result


def numpy_utilizations(payload: dict) -> dict:
    """{design: lowest mean lane utilization over the numpy rows}."""
    result = {}
    for design, row in payload.get("designs", {}).items():
        values = []
        numpy_row = row.get("backends", {}).get("numpy", {})
        if "mean_lane_utilization" in numpy_row:
            values.append(numpy_row["mean_lane_utilization"])
        saturated = row.get("numpy_saturated", {})
        if "mean_lane_utilization" in saturated:
            values.append(saturated["mean_lane_utilization"])
        if values:
            result[design] = min(values)
    return result


def flow_speedups(payload: dict) -> dict:
    """{metric: total flow speedup vs the seed replica}."""
    totals = payload.get("totals", {})
    result = {}
    for metric in ("cold_speedup_vs_seed", "warm_speedup_vs_seed"):
        if metric in totals:
            result[metric] = totals[metric]
    return result


def predict_reductions(payload: dict) -> dict:
    """{design: simulated-fault reduction of the static prefilter}."""
    return {design: row["simulated_reduction"]
            for design, row in payload.get("designs", {}).items()
            if "simulated_reduction" in row}


def predict_map_speedups(payload: dict) -> dict:
    """{design: cold speedup with the defeat-map build charged in}.

    Empty for reports written before the amortized accounting existed,
    so old baselines stay comparable.
    """
    return {design: row["speedup_with_map"]
            for design, row in payload.get("designs", {}).items()
            if "speedup_with_map" in row}


def _compare(label: str, baseline: dict, current: dict,
             tolerance: float) -> list:
    problems = []
    for key, reference in sorted(baseline.items()):
        measured = current.get(key)
        if measured is None:
            problems.append(f"{label} {key}: missing from the current "
                            f"report")
            continue
        floor = reference * (1.0 - tolerance)
        if measured < floor:
            problems.append(
                f"{label} {key}: speedup {measured:.2f}x fell below "
                f"{floor:.2f}x ({reference:.2f}x baseline - "
                f"{tolerance:.0%} tolerance)")
    return problems


def check(baseline: dict, current: dict, tolerance: float,
          numpy_min_speedup: float = 50.0,
          numpy_utilization_floor: float = 0.6) -> list:
    """Campaign regression messages (empty when the run is acceptable)."""
    problems = _compare("campaign", best_speedups(baseline),
                        best_speedups(current), tolerance)
    # The saturated throughput only ratio-compares at equal draw sizes:
    # a CI run with a capped REPRO_BENCH_NUMPY_FAULTS measures a smaller
    # draw than the committed baseline, where only the absolute floors
    # below apply.
    base_draws = {design: row.get("numpy_saturated", {}).get("num_faults")
                  for design, row in baseline.get("designs", {}).items()}
    cur_draws = {design: row.get("numpy_saturated", {}).get("num_faults")
                 for design, row in current.get("designs", {}).items()}
    comparable = {design: speedup for design, speedup
                  in numpy_saturated_speedups(baseline).items()
                  if base_draws.get(design) == cur_draws.get(design)}
    problems.extend(_compare("campaign numpy-saturated", comparable,
                             numpy_saturated_speedups(current), tolerance))
    # Absolute floors on the current report (skipped entirely when the
    # numpy backend was not measured, e.g. numpy-less environments).
    saturated = numpy_saturated_speedups(current)
    if saturated and max(saturated.values()) < numpy_min_speedup:
        problems.append(
            f"campaign numpy-saturated: best throughput speedup "
            f"{max(saturated.values()):.2f}x fell below the "
            f"{numpy_min_speedup:.0f}x acceptance floor")
    for design, utilization in sorted(numpy_utilizations(current).items()):
        if utilization < numpy_utilization_floor:
            problems.append(
                f"campaign numpy {design}: mean lane utilization "
                f"{utilization:.3f} fell below the "
                f"{numpy_utilization_floor:.2f} floor")
    return problems


def flow_map_in_run_speedups(payload: dict) -> dict:
    """{design: in-run flood-over-vectorized map-build speedup}.

    A same-machine ratio (both paths measured in the same session), so
    it ratio-compares portably across runners.  Empty for reports
    predating the section or measured without numpy (both legs run the
    flood there, the ratio would only measure noise).
    """
    section = payload.get("defeat_map_build", {})
    if not section.get("vectorized_available", False):
        return {}
    return {design: row["speedup_vs_flood_in_run"]
            for design, row in section.get("designs", {}).items()
            if "speedup_vs_flood_in_run" in row}


def check_flow(baseline: dict, current: dict, tolerance: float,
               parallel_min_speedup: float = 2.5,
               map_min_speedup: float = 5.0) -> list:
    """Flow regression messages (empty when the run is acceptable)."""
    problems = _compare("flow", flow_speedups(baseline),
                        flow_speedups(current), tolerance)
    problems.extend(_compare("flow defeat-map in-run",
                             flow_map_in_run_speedups(baseline),
                             flow_map_in_run_speedups(current), tolerance))
    parallel = current.get("parallel_cold")
    if parallel is not None:
        if not parallel.get("identical_across_threads", False):
            problems.append("flow parallel_cold: results were not "
                            "bit-identical across thread counts")
        if parallel.get("gate_applied", False):
            speedup = parallel.get("speedup_threads_n_vs_1", 0.0)
            if speedup < parallel_min_speedup:
                problems.append(
                    f"flow parallel_cold: threads="
                    f"{parallel.get('threads')} ran at {speedup:.2f}x "
                    f"threads=1, below the {parallel_min_speedup:.1f}x "
                    f"floor on a {parallel.get('cpu_count')}-core "
                    f"machine")
    defeat_map = current.get("defeat_map_build")
    if defeat_map is not None:
        for design, row in sorted(defeat_map.get("designs", {}).items()):
            if not row.get("identical_to_flood", False):
                problems.append(f"flow defeat_map_build {design}: "
                                f"vectorized map diverged from the flood")
            committed = row.get("speedup_vs_committed_flood")
            if defeat_map.get("vectorized_available", False) and \
                    committed is not None and committed < map_min_speedup:
                problems.append(
                    f"flow defeat_map_build {design}: {committed:.2f}x "
                    f"over the committed flood fell below the "
                    f"{map_min_speedup:.1f}x acceptance floor")
    return problems


def check_predict(baseline: dict, current: dict, tolerance: float) -> list:
    """Prefilter regression messages (empty when the run is acceptable)."""
    problems = _compare("prefilter", predict_reductions(baseline),
                        predict_reductions(current), tolerance)
    problems.extend(_compare("prefilter with-map",
                             predict_map_speedups(baseline),
                             predict_map_speedups(current), tolerance))
    return problems


def service_speedups(payload: dict) -> dict:
    """{metric: service speedup ratio} (portable across machines)."""
    result = {}
    if "warm_vs_cold_speedup" in payload:
        result["warm_vs_cold_speedup"] = payload["warm_vs_cold_speedup"]
    return result


def check_service(baseline: dict, current: dict, tolerance: float,
                  min_warm_speedup: float = 2.0,
                  min_jobs_per_sec: float = 0.2,
                  min_hit_rate: float = 0.75) -> list:
    """Service regression messages (empty when the run is acceptable).

    The warm-over-cold speedup is a same-machine ratio and so both
    ratio-compares against the baseline and carries an absolute
    acceptance floor; jobs/sec is machine-dependent and only has a
    (relaxable) sanity floor catching a warm path that degenerated to
    cold-path cost.
    """
    problems = _compare("service", service_speedups(baseline),
                        service_speedups(current), tolerance)
    speedup = current.get("warm_vs_cold_speedup", 0.0)
    if speedup < min_warm_speedup:
        problems.append(
            f"service: warm_vs_cold_speedup {speedup:.2f}x fell below "
            f"the {min_warm_speedup:.1f}x acceptance floor")
    warm = current.get("warm", {})
    jobs_per_second = warm.get("jobs_per_second", 0.0)
    if jobs_per_second < min_jobs_per_sec:
        problems.append(
            f"service: warm jobs/sec {jobs_per_second:.3f} fell below "
            f"the {min_jobs_per_sec:.3f} floor")
    hit_rate = warm.get("tier_hit_rate")
    if hit_rate is None or hit_rate < min_hit_rate:
        shown = "missing" if hit_rate is None else f"{hit_rate:.2f}"
        problems.append(
            f"service: warm tier hit rate {shown} fell below the "
            f"{min_hit_rate:.2f} floor")
    coalescing = current.get("coalescing", {})
    if coalescing.get("coalesced", 0) < 1:
        problems.append("service: identical in-flight submissions did "
                        "not coalesce")
    for key in ("reports_identical", "recompute_identical"):
        if not coalescing.get(key, False):
            problems.append(f"service: coalescing proof {key} failed "
                            f"(shared result diverged from a recompute)")
    return problems


def check_recovery(baseline: dict, current: dict,
                   min_resume_speedup: float = 1.0,
                   min_checkpoint_hits: int = 1) -> list:
    """Crash-recovery gate for the BENCH_service.json ``recovery`` row.

    Only enforced when the committed baseline carries a ``recovery``
    section (reports written before the crash-safety work pass
    untouched).  The identity bits are hard correctness gates — a resumed
    or worker-kill run whose report diverges from the uninterrupted
    reference is a bug, never noise; the resume speedup is wall-clock
    and therefore only held to a relaxable floor (default: resuming must
    not be *slower* than cold).
    """
    if "recovery" not in baseline:
        return []
    recovery = current.get("recovery")
    if recovery is None:
        return ["service recovery: section missing from the current "
                "report (baseline has one)"]
    problems = []
    if not recovery.get("resume_identical", False):
        problems.append("service recovery: resumed report diverged from "
                        "the uninterrupted reference")
    worker_kill = recovery.get("worker_kill", {})
    if not worker_kill.get("report_identical", False):
        problems.append("service recovery: worker-kill report diverged "
                        "from the uninterrupted reference")
    if worker_kill.get("retries_taken", 0) < 1:
        problems.append("service recovery: the seeded worker kill never "
                        "triggered a supervised retry")
    if recovery.get("checkpoint_hits", 0) < min_checkpoint_hits:
        problems.append(
            f"service recovery: resumed run reloaded "
            f"{recovery.get('checkpoint_hits', 0)} shard checkpoint(s), "
            f"below the {min_checkpoint_hits} floor")
    if recovery.get("recovered_jobs", 0) < 1:
        problems.append("service recovery: journal replay recovered no "
                        "jobs after the simulated crash")
    if recovery.get("clean_shutdown_marker", False):
        problems.append("service recovery: a clean-shutdown marker "
                        "survived the simulated crash (the journal gate "
                        "is not actually being exercised)")
    speedup = recovery.get("resume_speedup_vs_cold", 0.0)
    if speedup < min_resume_speedup:
        problems.append(
            f"service recovery: resume ran at {speedup:.2f}x the cold "
            f"cost, below the {min_resume_speedup:.2f}x floor")
    return problems


def _pipeline_runs(report: dict):
    """Yield (label, single-run report) pairs, expanding matrix reports."""
    runs = report.get("runs")
    if runs:
        for variant, sub in runs.items():
            yield f"[{variant}]", sub
    else:
        yield "", report


def check_pipeline(report: dict, label: str = "pipeline") -> list:
    """Warm-run cache gate for one ``python -m repro run`` JSON report.

    The report must come from a run whose caches were warm (``--repeat 2``
    with a persistent ``--flow-cache``); the stage records then prove the
    fingerprint-keyed reuse actually happened.
    """
    problems = []
    if report.get("repeat", 1) < 2:
        problems.append(f"{label}: report was produced with repeat="
                        f"{report.get('repeat', 1)}; the cache gate needs "
                        f"a warm run (--repeat 2)")
        return problems
    for variant, run in _pipeline_runs(report):
        name = f"{label}{variant} ({run.get('scenario', '?')})"
        stages = {stage["name"]: stage for stage in run.get("stages", [])}
        implement = stages.get("implement")
        if implement is not None:
            cache = implement.get("cache", {})
            if cache.get("hits", 0) < 1:
                problems.append(f"{name}: implement stage had no "
                                f"flow-store hits on a warm run")
            if cache.get("misses", 0) > 0:
                problems.append(f"{name}: implement stage missed the flow "
                                f"store {cache['misses']} time(s) on a "
                                f"warm run (stale fingerprint?)")
        campaign = stages.get("campaign")
        if campaign is not None:
            cache = campaign.get("cache", {})
            if cache.get("golden_hits", 0) < 1:
                problems.append(f"{name}: campaign stage recomputed every "
                                f"golden trace on a warm run")
            if cache.get("effect_hits", 0) < 1:
                problems.append(f"{name}: campaign stage recomputed every "
                                f"fault effect on a warm run")
    return problems


def check_lint(report: dict, max_findings: int,
               label: str = "lint") -> list:
    """Gate a ``python -m repro.devtools.lint --format json`` report.

    Parse errors are always fatal; unwaived findings are capped at
    *max_findings* (0 in CI: the tree must be clean modulo the
    checked-in, justified baseline).
    """
    problems = []
    errors = report.get("errors", [])
    for error in errors:
        problems.append(f"{label}: {error.get('path')}: "
                        f"{error.get('message')}")
    findings = report.get("findings", [])
    if len(findings) > max_findings:
        problems.append(
            f"{label}: {len(findings)} unwaived finding(s), "
            f"allowed {max_findings}")
        for finding in findings:
            problems.append(
                f"{label}:   {finding.get('path')}:{finding.get('line')} "
                f"{finding.get('rule')} {finding.get('message')}")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, default=None,
                        help="committed BENCH_campaign.json")
    parser.add_argument("--current", type=Path, default=None,
                        help="freshly measured BENCH_campaign.json")
    parser.add_argument("--flow-baseline", type=Path, default=None,
                        help="committed BENCH_flow.json")
    parser.add_argument("--flow-current", type=Path, default=None,
                        help="freshly measured BENCH_flow.json")
    parser.add_argument("--flow-parallel-min-speedup", type=float,
                        default=2.5,
                        help="floor for the cold suite flow at threads=N "
                             "vs threads=1 (default 2.5; only applied "
                             "when the report says the gate ran on a "
                             "multi-core machine)")
    parser.add_argument("--flow-map-min-speedup", type=float, default=5.0,
                        help="absolute floor for the vectorized defeat-"
                             "map build's speedup over the committed "
                             "python flood (default 5.0; skipped without "
                             "numpy)")
    parser.add_argument("--predict-baseline", type=Path, default=None,
                        help="committed BENCH_predict.json")
    parser.add_argument("--predict-current", type=Path, default=None,
                        help="freshly measured BENCH_predict.json")
    parser.add_argument("--service-baseline", type=Path, default=None,
                        help="committed BENCH_service.json")
    parser.add_argument("--service-current", type=Path, default=None,
                        help="freshly measured BENCH_service.json")
    parser.add_argument("--service-min-warm-speedup", type=float,
                        default=2.0,
                        help="absolute floor for the service's warm-over-"
                             "cold aggregate speedup (default 2.0 since "
                             "the parallel cold flow shrank the ratio's "
                             "denominator; relax further on noisy shared "
                             "runners)")
    parser.add_argument("--service-min-jobs-per-sec", type=float,
                        default=0.2,
                        help="sanity floor for the warm wave's jobs/sec "
                             "(machine-dependent; default 0.2)")
    parser.add_argument("--service-min-hit-rate", type=float, default=0.75,
                        help="floor for the warm wave's tier hit rate "
                             "(default 0.75)")
    parser.add_argument("--service-recovery-min-speedup", type=float,
                        default=1.0,
                        help="floor for the crash-resume wall-clock "
                             "speedup over the cold run (default 1.0: "
                             "resuming must not be slower; relax on "
                             "noisy shared runners)")
    parser.add_argument("--service-recovery-min-checkpoint-hits",
                        type=int, default=1,
                        help="minimum shard checkpoints the resumed run "
                             "must reload (default 1)")
    parser.add_argument("--pipeline-report", type=Path, action="append",
                        default=[], metavar="REPORT.json",
                        help="warm-run 'python -m repro run --repeat 2' "
                             "report to gate on pipeline-stage cache "
                             "reuse (repeatable)")
    parser.add_argument("--lint-report", type=Path, default=None,
                        metavar="LINT.json",
                        help="'python -m repro.devtools.lint --format "
                             "json' report to gate on unwaived invariant "
                             "findings")
    parser.add_argument("--max-lint-findings", type=int, default=0,
                        help="allowed unwaived lint findings (default 0: "
                             "clean modulo the justified baseline)")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional drop of the best "
                        "speedup (default 0.30)")
    parser.add_argument("--numpy-min-speedup", type=float, default=50.0,
                        help="absolute floor for the numpy backend's best "
                             "saturated-draw throughput speedup (default "
                             "50 — recalibrated from 60 when the shared "
                             "per-layout fault-list tables sped up the "
                             "seed-serial denominator ~2x; relax on slow "
                             "shared runners)")
    parser.add_argument("--numpy-utilization-floor", type=float,
                        default=0.6,
                        help="absolute floor for the numpy backend's mean "
                             "lane utilization per design (default 0.6)")
    arguments = parser.parse_args(argv)
    if arguments.baseline is None and arguments.flow_baseline is None \
            and arguments.predict_baseline is None \
            and arguments.service_baseline is None \
            and not arguments.pipeline_report \
            and arguments.lint_report is None:
        parser.error("nothing to check: pass --baseline/--current, "
                     "--flow-baseline/--flow-current, "
                     "--predict-baseline/--predict-current, "
                     "--service-baseline/--service-current, "
                     "--pipeline-report and/or --lint-report")
    if (arguments.baseline is None) != (arguments.current is None):
        parser.error("--baseline and --current must be given together")
    if (arguments.flow_baseline is None) != (arguments.flow_current is None):
        parser.error("--flow-baseline and --flow-current must be given "
                     "together")
    if (arguments.predict_baseline is None) != \
            (arguments.predict_current is None):
        parser.error("--predict-baseline and --predict-current must be "
                     "given together")
    if (arguments.service_baseline is None) != \
            (arguments.service_current is None):
        parser.error("--service-baseline and --service-current must be "
                     "given together")

    problems = []
    if arguments.baseline is not None:
        baseline = json.loads(arguments.baseline.read_text())
        current = json.loads(arguments.current.read_text())
        problems.extend(check(
            baseline, current, arguments.tolerance,
            numpy_min_speedup=arguments.numpy_min_speedup,
            numpy_utilization_floor=arguments.numpy_utilization_floor))

        for design, reference in sorted(best_speedups(baseline).items()):
            measured = best_speedups(current).get(design)
            shown = f"{measured:.2f}x" if measured is not None else "missing"
            print(f"{design}: baseline {reference:.2f}x -> current {shown}")
        measured_saturated = numpy_saturated_speedups(current)
        for design, reference in sorted(
                numpy_saturated_speedups(baseline).items()):
            measured = measured_saturated.get(design)
            shown = f"{measured:.2f}x" if measured is not None else "missing"
            print(f"numpy saturated {design}: baseline {reference:.2f}x "
                  f"-> current {shown}")
        for design, utilization in sorted(
                numpy_utilizations(current).items()):
            print(f"numpy lane utilization {design}: {utilization:.3f}")

    if arguments.flow_baseline is not None and \
            arguments.flow_current is not None:
        flow_baseline = json.loads(arguments.flow_baseline.read_text())
        flow_current = json.loads(arguments.flow_current.read_text())
        problems.extend(check_flow(
            flow_baseline, flow_current, arguments.tolerance,
            parallel_min_speedup=arguments.flow_parallel_min_speedup,
            map_min_speedup=arguments.flow_map_min_speedup))
        measured_flow = flow_speedups(flow_current)
        for metric, reference in sorted(
                flow_speedups(flow_baseline).items()):
            measured = measured_flow.get(metric)
            shown = f"{measured:.2f}x" if measured is not None else "missing"
            print(f"flow {metric}: baseline {reference:.2f}x -> "
                  f"current {shown}")
        parallel = flow_current.get("parallel_cold")
        if parallel is not None:
            print(f"flow parallel_cold: threads={parallel.get('threads')} "
                  f"at {parallel.get('speedup_threads_n_vs_1')}x vs "
                  f"threads=1 on {parallel.get('cpu_count')} core(s), "
                  f"identical: {parallel.get('identical_across_threads')}")
        for design, row in sorted(flow_current.get(
                "defeat_map_build", {}).get("designs", {}).items()):
            committed = row.get("speedup_vs_committed_flood")
            shown = f"{committed:.2f}x" if committed is not None else "n/a"
            print(f"flow defeat-map {design}: "
                  f"{row.get('speedup_vs_flood_in_run')}x in-run, "
                  f"{shown} vs committed flood, identical: "
                  f"{row.get('identical_to_flood')}")
    if arguments.predict_baseline is not None and \
            arguments.predict_current is not None:
        predict_baseline = json.loads(arguments.predict_baseline.read_text())
        predict_current = json.loads(arguments.predict_current.read_text())
        problems.extend(check_predict(predict_baseline, predict_current,
                                      arguments.tolerance))
        measured_predict = predict_reductions(predict_current)
        for design, reference in sorted(
                predict_reductions(predict_baseline).items()):
            measured = measured_predict.get(design)
            shown = f"{measured:.2f}x" if measured is not None else "missing"
            print(f"prefilter {design}: baseline {reference:.2f}x -> "
                  f"current {shown}")
    if arguments.service_baseline is not None and \
            arguments.service_current is not None:
        service_baseline = json.loads(arguments.service_baseline.read_text())
        service_current = json.loads(arguments.service_current.read_text())
        problems.extend(check_service(
            service_baseline, service_current, arguments.tolerance,
            min_warm_speedup=arguments.service_min_warm_speedup,
            min_jobs_per_sec=arguments.service_min_jobs_per_sec,
            min_hit_rate=arguments.service_min_hit_rate))
        problems.extend(check_recovery(
            service_baseline, service_current,
            min_resume_speedup=arguments.service_recovery_min_speedup,
            min_checkpoint_hits=(
                arguments.service_recovery_min_checkpoint_hits)))
        measured_service = service_speedups(service_current)
        for metric, reference in sorted(
                service_speedups(service_baseline).items()):
            measured = measured_service.get(metric)
            shown = f"{measured:.2f}x" if measured is not None else "missing"
            print(f"service {metric}: baseline {reference:.2f}x -> "
                  f"current {shown}")
        warm = service_current.get("warm", {})
        print(f"service warm jobs/sec: "
              f"{warm.get('jobs_per_second', 0.0):.3f}, tier hit rate: "
              f"{warm.get('tier_hit_rate')}, coalesced: "
              f"{service_current.get('coalescing', {}).get('coalesced')}")
        recovery = service_current.get("recovery")
        if recovery is not None:
            print(f"service recovery: {recovery.get('checkpoint_hits')} "
                  f"checkpoint hit(s), "
                  f"{recovery.get('shards_recomputed')} of "
                  f"{recovery.get('shards_total')} shard(s) recomputed, "
                  f"resume {recovery.get('resume_speedup_vs_cold')}x vs "
                  f"cold, identical: "
                  f"{recovery.get('resume_identical')}")
    for path in arguments.pipeline_report:
        report = json.loads(path.read_text())
        report_problems = check_pipeline(report, label=path.name)
        problems.extend(report_problems)
        status = "ok" if not report_problems else \
            f"{len(report_problems)} problem(s)"
        print(f"pipeline {path.name} ({report.get('scenario', '?')}): "
              f"cache reuse {status}")
    if arguments.lint_report is not None:
        lint = json.loads(arguments.lint_report.read_text())
        lint_problems = check_lint(lint, arguments.max_lint_findings,
                                   label=arguments.lint_report.name)
        problems.extend(lint_problems)
        print(f"lint {arguments.lint_report.name}: "
              f"{len(lint.get('findings', []))} unwaived, "
              f"{len(lint.get('waived', []))} waived finding(s) over "
              f"{lint.get('files_checked', 0)} file(s): "
              f"{'ok' if not lint_problems else 'FAIL'}")
    if problems:
        print("\nBenchmark regression detected:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print("No benchmark regression beyond tolerance "
          f"({arguments.tolerance:.0%}).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
