"""Experiment driver for Table 4: classification of error-causing upsets.

The campaigns of Table 3 already classify every injected upset by its effect
(LUT / MUX / Initialization / Open / Bridge / Input-Antenna / Conflict /
Others); this driver aggregates the error-causing ones per design version,
which is the paper's Table 4.  ``python -m repro run table4-fir`` is the
equivalent pipeline surface.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Sequence

from ..faults import CampaignResult, table4_report
from ..faults.engine import BackendLike
from ..pnr import Implementation
from .cli import experiment_parser
from .designs import DESIGN_ORDER, PAPER_TABLE4, DesignSuite
from .table3 import run_table3


def run_table4(results: Optional[Dict[str, CampaignResult]] = None,
               suite: Optional[DesignSuite] = None,
               implementations: Optional[Dict[str, Implementation]] = None,
               scale: str = "fast", num_faults: Optional[int] = None,
               backend: BackendLike = None) -> Dict[str, Dict[str, int]]:
    """Return the per-design effect breakdown of error-causing upsets.

    *backend* selects the campaign execution backend (``"serial"``,
    ``"batch"``, ``"process"``, the bit-parallel ``"vector"`` or the
    numpy-compiled ``"numpy"``).
    """
    if results is None:
        results = run_table3(suite=suite, implementations=implementations,
                             scale=scale, num_faults=num_faults,
                             backend=backend)
    table: Dict[str, Dict[str, int]] = {}
    for name, result in results.items():
        table[name] = result.effect_table()
    return table


def derived_claims(results: Dict[str, CampaignResult]) -> Dict[str, object]:
    """The qualitative claims the paper draws from Table 4."""
    from ..pipeline import table4_claims

    return table4_claims(results)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = experiment_parser(__doc__, faults=True, upset_model=True,
                               prefilter=True)
    arguments = parser.parse_args(argv)

    if arguments.json:
        from ..pipeline import stable_report
        from ..scenarios import run_scenario

        report = run_scenario(
            "table4-fir", scale=arguments.scale,
            backend=arguments.backend, upset_model=arguments.upset_model,
            num_faults=arguments.faults, prefilter=arguments.prefilter,
            jobs=arguments.jobs,
            flow_cache=arguments.flow_cache, progress=True)
        print(json.dumps(stable_report(report), indent=2, default=str,
                         sort_keys=True))
        return 0

    results = run_table3(scale=arguments.scale, num_faults=arguments.faults,
                         progress=True, backend=arguments.backend,
                         jobs=arguments.jobs,
                         flow_cache=arguments.flow_cache,
                         upset_model=arguments.upset_model,
                         prefilter=arguments.prefilter)
    print(table4_report(results, order=[n for n in DESIGN_ORDER
                                        if n in results]))
    claims = derived_claims(results)
    print("\nLUT upsets able to defeat TMR:",
          "yes" if claims["lut_upsets_defeat_tmr"] else
          "no (matches the paper)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
