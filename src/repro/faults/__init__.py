"""Bitstream fault injection: fault lists, models, injection and campaigns."""

from . import categories
from .campaign import (CampaignConfig, CampaignResult, CategoryCount,
                       default_stimulus, run_campaign, run_campaigns)
from .fault_list import FAULT_LIST_MODES, FaultList, FaultListManager
from .injector import FaultInjectionManager, FaultResult
from .models import FaultEffect, FaultModeler
from .report import (campaign_details, format_table, table3_report,
                     table4_report)

__all__ = [
    "categories", "CampaignConfig", "CampaignResult", "CategoryCount",
    "default_stimulus", "run_campaign", "run_campaigns", "FAULT_LIST_MODES",
    "FaultList", "FaultListManager", "FaultInjectionManager", "FaultResult",
    "FaultEffect", "FaultModeler", "campaign_details", "format_table",
    "table3_report", "table4_report",
]
