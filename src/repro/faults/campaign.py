"""Fault-injection campaigns: the experiment of the paper's Tables 3 and 4.

A campaign takes one implemented design, builds its fault list, samples a
configurable number of bits, evaluates them through a pluggable execution
backend (see :mod:`repro.faults.engine`) and aggregates the results: the
fraction of upsets producing wrong answers (Table 3) and the breakdown of
error-causing upsets by effect category (Table 4).

``run_campaign`` keeps its historical signature; the ``backend=`` knob
selects the execution strategy (``"serial"`` — the seed semantics and the
default, ``"batch"`` — shared simulator programs per overlay signature,
``"process"`` — sharded ``multiprocessing`` workers, ``"vector"`` — whole
fault shards packed into big-int lanes and swept bit-parallel through
:mod:`repro.sim.bitparallel`) and ``use_cache=`` controls the golden-trace
/ fault-effect cache (:mod:`repro.faults.cache`).  All backends produce
bit-identical aggregates for the same seed.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence

from ..pnr.flow import Implementation
from ..sim.compile import CompiledDesign
from ..sim.vectors import campaign_workload, stimulus_from_samples, \
    tmr_stimulus_from_samples
from . import categories
from .cache import get_cache
from .engine import (BackendLike, CampaignContext, ProgressCallback,
                     resolve_backend)
from .fault_list import FaultListManager
from .injector import FaultResult
from .upsets import UpsetModelLike, resolve_upset_model


@dataclasses.dataclass
class CampaignConfig:
    """Parameters of one fault-injection campaign."""

    #: number of upsets to inject (the paper injects ~10% of the relevant
    #: bits; ``None`` means "sample_fraction of the fault list")
    num_faults: Optional[int] = None
    #: fraction of the fault list to sample when ``num_faults`` is None
    sample_fraction: float = 0.10
    #: random seed for fault sampling (publication year by default)
    seed: int = 2005
    #: workload length in clock cycles
    workload_cycles: int = 12
    #: workload seed (same stream for every design of an experiment)
    workload_seed: int = 2005
    #: fault list selection mode (see :mod:`repro.faults.fault_list`)
    fault_list_mode: str = "design"
    #: cycles ignored at the start of the comparison
    skip_cycles: int = 0
    #: how many bits one injection flips (see :mod:`repro.faults.upsets`):
    #: ``"single"`` (seed semantics), ``"mbu[:k]"`` (adjacent multi-bit
    #: clusters) or ``"accumulate[:k]"`` (upsets accrue between scrubs)
    upset_model: UpsetModelLike = "single"


@dataclasses.dataclass
class CategoryCount:
    """Occurrences of one effect category within a campaign."""

    injected: int = 0
    wrong: int = 0


@dataclasses.dataclass
class CampaignResult:
    """Aggregated outcome of one campaign (one row of Table 3)."""

    design: str
    mode: str
    fault_list_size: int
    injected: int
    wrong_answers: int
    results: List[FaultResult]
    by_category: Dict[str, CategoryCount]
    duration_seconds: float
    #: name of the execution backend that evaluated the campaign
    backend: str = "serial"
    #: parameterized name of the upset model that built the injections
    upset_model: str = "single"
    #: fault-sampling seed of the campaign (provenance for reports)
    seed: int = 2005

    @property
    def wrong_answer_percent(self) -> float:
        if not self.injected:
            return 0.0
        return 100.0 * self.wrong_answers / self.injected

    @property
    def faults_per_second(self) -> float:
        if self.duration_seconds <= 0:
            return 0.0
        return self.injected / self.duration_seconds

    def effect_table(self) -> Dict[str, int]:
        """Error-causing upsets per category (one column of Table 4)."""
        return {category: count.wrong
                for category, count in self.by_category.items()}

    def summary_row(self) -> Dict[str, object]:
        return {
            "design": self.design,
            "injected": self.injected,
            "wrong": self.wrong_answers,
            "wrong_percent": round(self.wrong_answer_percent, 2),
        }


def default_stimulus(implementation: Implementation,
                     config: CampaignConfig) -> List[Dict[str, int]]:
    """Build the campaign workload for a design.

    TMR designs expose triplicated data inputs (``DIN_tr0`` ...); the same
    sample stream is applied to all three copies, as the three domains share
    the external signal in the paper's setup.  Ports are scanned in sorted
    order and the *first* sorted data port (or first ``_tr0`` port) drives
    the workload — deliberately replacing the seed's insertion-order
    dependent pick, which could land on an arbitrary late port for
    multi-input designs.
    """
    ports = implementation.design.ports
    data_ports = sorted(name for name in ports
                        if ports[name].direction.value == "input"
                        and not name.upper().startswith("CLK"))
    if not data_ports:
        return [{} for _ in range(config.workload_cycles)]
    tmr_style = any(name.endswith("_tr0") for name in data_ports)
    base_port = None
    width = 0
    if tmr_style:
        for name in data_ports:
            if name.endswith("_tr0"):
                base_port = name[:-4]
                width = ports[name].width
                break
    if base_port is None:
        base_port = data_ports[0]
        width = ports[base_port].width
    samples = campaign_workload(width, config.workload_cycles,
                                config.workload_seed)
    if tmr_style:
        return tmr_stimulus_from_samples(samples, base_port)
    return stimulus_from_samples(samples, base_port)


def run_campaign(implementation: Implementation,
                 config: Optional[CampaignConfig] = None,
                 compiled: Optional[CompiledDesign] = None,
                 stimulus: Optional[Sequence[Dict[str, int]]] = None,
                 fault_bits: Optional[Sequence[int]] = None,
                 progress: Optional[ProgressCallback] = None,
                 backend: BackendLike = None,
                 use_cache: bool = True) -> CampaignResult:
    """Run one fault-injection campaign on an implemented design."""
    config = config if config is not None else CampaignConfig()
    engine = resolve_backend(backend)
    model = resolve_upset_model(config.upset_model)
    start = time.time()

    cache_entry = get_cache().entry_for(implementation) if use_cache else None
    if use_cache:
        stats = get_cache().stats
    else:
        stats = None
    context = CampaignContext(
        implementation, compiled=compiled,
        stimulus=list(stimulus) if stimulus is not None
        else default_stimulus(implementation, config),
        skip_cycles=config.skip_cycles,
        cache_entry=cache_entry, stats=stats)

    if cache_entry is not None:
        fault_list = cache_entry.fault_list(config.fault_list_mode,
                                            context.stats)
    else:
        fault_list = FaultListManager(implementation).build(
            config.fault_list_mode)
    if fault_bits is None:
        count = config.num_faults if config.num_faults is not None else \
            max(1, int(len(fault_list) * config.sample_fraction))
        groups = model.injections(
            fault_list, count, config.seed,
            total_bits=implementation.layout.total_bits)
    else:
        # An explicit bit list bypasses the model's sampling but keeps
        # the historical one-bit-per-injection semantics.
        groups = [(bit,) for bit in fault_bits]

    tasks = context.tasks_for_groups(groups)
    verdicts = engine.run(context, tasks, progress)

    results: List[FaultResult] = []
    by_category: Dict[str, CategoryCount] = {
        category: CategoryCount() for category in categories.TABLE4_ORDER}
    wrong_answers = 0
    for verdict in verdicts:
        results.append(verdict.to_result())
        bucket = by_category.setdefault(verdict.category, CategoryCount())
        bucket.injected += 1
        if verdict.wrong_answer:
            bucket.wrong += 1
            wrong_answers += 1

    return CampaignResult(
        design=implementation.design.name,
        mode=config.fault_list_mode,
        fault_list_size=len(fault_list),
        injected=len(results),
        wrong_answers=wrong_answers,
        results=results,
        by_category=by_category,
        duration_seconds=time.time() - start,
        backend=engine.name,
        upset_model=model.describe(),
        seed=config.seed,
    )


def run_campaigns(implementations: Dict[str, Implementation],
                  config: Optional[CampaignConfig] = None,
                  progress: Optional[ProgressCallback] = None,
                  backend: BackendLike = None,
                  use_cache: bool = True) -> Dict[str, CampaignResult]:
    """Run the same campaign over several designs (the five filter versions)."""
    engine = resolve_backend(backend)
    results: Dict[str, CampaignResult] = {}
    for name, implementation in implementations.items():
        results[name] = run_campaign(implementation, config,
                                     progress=progress, backend=engine,
                                     use_cache=use_cache)
    return results
