"""Upset models: how many configuration bits one injection flips.

The paper (and PRs 1-3) evaluate the classical single-bit-upset model: one
sampled configuration bit per injection.  Follow-up work on SRAM-based
FPGAs (Hoque et al. on TMR partitioning dependability, Giordano et al. on
configuration redundancy) evaluates two further regimes that this module
adds as a pluggable axis:

* ``single`` — one flipped bit per injection.  Bit-identical to the seed
  campaign semantics: the sampled bits, their order and their modelled
  effects are exactly those of the historical code path.
* ``mbu`` (multi-bit upset) — one particle strike flips a small cluster of
  *physically adjacent* configuration cells.  Adjacency is modelled in the
  configuration-memory address space: each sampled primary bit is extended
  with its next ``size - 1`` neighbouring addresses (reflected at the top
  of the address space), and the whole cluster is present simultaneously
  during one faulty run.
* ``accumulate`` — upsets accrue between scrubbing passes.  The sampled
  upset stream is split into consecutive groups of ``interval`` bits; each
  group is evaluated with all of its upsets present at once (the state of
  the device just before the scrubber repairs the configuration), and the
  golden comparison restarts from a repaired device for the next group.

Every model draws its primary bits through
:meth:`~repro.faults.fault_list.FaultList.sample` — a reproducible sample
*without replacement* — so campaigns are deterministic under a fixed seed
across processes and execution backends.

:func:`merged_effect` composes the per-bit :class:`FaultEffect`\\ s of one
multi-bit injection into a single effect/overlay.  LUT truth-table upsets
compose by XOR against the base INIT (two flips of the same table are both
applied, and flipping the same minterm twice cancels, as in the silicon);
the remaining override kinds are disjoint by construction (each
configuration bit owns its resource) and merge by dict union.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple, Union

from ..sim.compile import CompiledDesign
from ..sim.overlay import FaultOverlay
from .models import FaultEffect

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .fault_list import FaultList

#: One injection: the tuple of configuration bits flipped simultaneously.
Injection = Tuple[int, ...]

#: The documented model names, for CLI ``choices=`` and error messages.
UPSET_MODEL_CHOICES = ("single", "mbu", "accumulate")


class UpsetModel(abc.ABC):
    """Strategy interface: turn a fault list into a list of injections."""

    #: registry name, also used in reports
    name: str = "abstract"

    @abc.abstractmethod
    def injections(self, fault_list: "FaultList", count: int, seed: int,
                   total_bits: Optional[int] = None) -> List[Injection]:
        """Sample *count* upsets and group them into injection units.

        *total_bits* bounds the configuration address space (used by
        models that extend a sampled bit with physical neighbours).
        """

    def describe(self) -> str:
        """Canonical parameterized spelling, parseable by
        :func:`resolve_upset_model`."""
        return self.name


class SingleUpset(UpsetModel):
    """One bit per injection — the seed campaign semantics, bit-identical."""

    name = "single"

    def injections(self, fault_list: "FaultList", count: int, seed: int,
                   total_bits: Optional[int] = None) -> List[Injection]:
        return [(bit,) for bit in fault_list.sample(count, seed)]


class MultiBitUpset(UpsetModel):
    """Adjacent multi-bit upsets: one strike flips a cluster of cells."""

    name = "mbu"

    def __init__(self, size: int = 2) -> None:
        if size < 1:
            raise ValueError("mbu cluster size must be at least 1")
        self.size = size

    def describe(self) -> str:
        return f"{self.name}:{self.size}"

    def injections(self, fault_list: "FaultList", count: int, seed: int,
                   total_bits: Optional[int] = None) -> List[Injection]:
        groups: List[Injection] = []
        for bit in fault_list.sample(count, seed):
            # Grow a contiguous address window around the primary bit:
            # upward while the address space allows, downward otherwise,
            # so edge clusters stay physically adjacent (no holes).
            low = high = bit
            cluster = [bit]
            for _ in range(1, self.size):
                if total_bits is None or high + 1 < total_bits:
                    high += 1
                    cluster.append(high)
                elif low - 1 >= 0:
                    low -= 1
                    cluster.append(low)
                else:
                    break
            groups.append(tuple(cluster))
        return groups


class AccumulatedUpset(UpsetModel):
    """Upsets accrue across a scrubbing interval before being repaired."""

    name = "accumulate"

    def __init__(self, interval: int = 4) -> None:
        if interval < 1:
            raise ValueError("accumulation interval must be at least 1")
        self.interval = interval

    def describe(self) -> str:
        return f"{self.name}:{self.interval}"

    def injections(self, fault_list: "FaultList", count: int, seed: int,
                   total_bits: Optional[int] = None) -> List[Injection]:
        sample = fault_list.sample(count, seed)
        return [tuple(sample[start:start + self.interval])
                for start in range(0, len(sample), self.interval)]


#: Registry of model names accepted by the ``upset_model=`` knob.
UPSET_MODELS = {
    SingleUpset.name: SingleUpset,
    MultiBitUpset.name: MultiBitUpset,
    AccumulatedUpset.name: AccumulatedUpset,
    # convenience aliases
    "sbu": SingleUpset,
    "mcu": MultiBitUpset,
    "scrub": AccumulatedUpset,
}

UpsetModelLike = Union[None, str, UpsetModel]


def resolve_upset_model(model: UpsetModelLike = None) -> UpsetModel:
    """Normalize the ``upset_model=`` knob into an :class:`UpsetModel`.

    Accepts ``None`` (single, the seed semantics), a registry name with an
    optional integer parameter (``"mbu"``, ``"mbu:3"``, ``"accumulate:8"``),
    a model class or a ready instance.
    """
    if model is None:
        return SingleUpset()
    if isinstance(model, UpsetModel):
        return model
    if isinstance(model, type) and issubclass(model, UpsetModel):
        return model()
    if isinstance(model, str):
        key, _, parameter = model.strip().lower().partition(":")
        if key in UPSET_MODELS:
            cls = UPSET_MODELS[key]
            if not parameter:
                return cls()
            try:
                argument = int(parameter)
            except ValueError:
                raise ValueError(
                    f"upset model parameter must be an integer, got "
                    f"{model!r}") from None
            if cls is SingleUpset:
                raise ValueError("the single-bit model takes no parameter")
            return cls(argument)
        raise ValueError(f"unknown upset model {model!r}; choose from "
                         f"{sorted(set(UPSET_MODELS))} (optionally "
                         f"parameterized, e.g. 'mbu:3', 'accumulate:8')")
    raise TypeError(f"upset_model must be None, a name or an UpsetModel, "
                    f"got {type(model).__name__}")


def merged_effect(bits: Sequence[int], effects: Sequence[FaultEffect],
                  compiled: CompiledDesign) -> FaultEffect:
    """Compose the per-bit effects of one multi-bit injection.

    The merged effect's category and resource are those of the first
    constituent with a behavioural effect (the primary upset of the
    cluster), falling back to the first constituent — a deterministic
    choice, so Table 4 style breakdowns stay seed-stable.
    """
    if len(effects) == 1:
        return effects[0]
    overlay = FaultOverlay(
        description=" + ".join(effect.overlay.description
                               for effect in effects
                               if effect.overlay.description))
    seed_nets = set()
    for effect in effects:
        source = effect.overlay
        for gate_index, init in source.lut_init_overrides.items():
            base = compiled.gates[gate_index].init
            current = overlay.lut_init_overrides.get(gate_index, base)
            # XOR composition: apply this bit's flip mask on top of the
            # flips already accumulated for the same truth table.
            overlay.lut_init_overrides[gate_index] = current ^ (init ^ base)
        overlay.gate_pin_overrides.update(source.gate_pin_overrides)
        overlay.ff_pin_overrides.update(source.ff_pin_overrides)
        overlay.ff_init_overrides.update(source.ff_init_overrides)
        overlay.net_overrides.update(source.net_overrides)
        overlay.output_pin_overrides.update(source.output_pin_overrides)
        overlay.comb_passes = max(overlay.comb_passes, source.comb_passes)
        seed_nets.update(source.seed_nets)
    overlay.seed_nets = sorted(seed_nets)

    primary = next((effect for effect in effects if effect.has_effect),
                   effects[0])
    active = [effect.category for effect in effects if effect.has_effect]
    detail = (f"{len(bits)}-bit upset"
              + (f" [{' + '.join(active)}]" if active else " [no effect]"))
    return FaultEffect(bit=bits[0], resource=primary.resource,
                       category=primary.category, overlay=overlay,
                       detail=detail)
