"""Structural analysis of TMR netlists: domain isolation, voter regions and
an analytical estimate of the probability that a routing upset defeats TMR.

The analytical model captures the paper's qualitative argument: a routing
upset that bridges signals of two *different* redundant domains defeats the
TMR only when both corrupted signals are voted by the same voter barrier
(they live in the same *voter region*).  Splitting the logic into more
regions shrinks that probability, but every region adds voters (area, delay
and additional inter-domain wiring).  The fault-injection campaigns measure
the same effect on the placed-and-routed design.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Dict, List, Optional, Set

from ..netlist.ir import Definition, Instance, InstancePin, Net, TopPin
from .partition import is_register_component
from .voters import DOMAIN_PROPERTY, VOTED_NET_PROPERTY, is_voter


@dataclasses.dataclass
class DomainIsolationReport:
    """Result of checking that redundant domains only meet at voters."""

    ok: bool
    #: nets whose pins span more than one domain without being voter inputs
    violations: List[str]
    #: number of nets per domain (None key = shared / undomained logic)
    nets_per_domain: Dict[Optional[int], int]
    #: number of instances per domain
    instances_per_domain: Dict[Optional[int], int]


def domain_of_instance(instance: Instance) -> Optional[int]:
    value = instance.properties.get(DOMAIN_PROPERTY)
    return int(value) if value is not None else None


def domain_of_net(net: Net) -> Optional[int]:
    value = net.properties.get(DOMAIN_PROPERTY)
    return int(value) if value is not None else None


def check_domain_isolation(definition: Definition) -> DomainIsolationReport:
    """Verify the Figure 1/3 property: domains only interconnect at voters.

    Every net must be readable by instances of a single domain, except that
    voter instances legitimately read all three domains, and shared logic
    (final output voters, non-triplicated clocks) has no domain.
    """
    violations: List[str] = []
    nets_per_domain: Dict[Optional[int], int] = defaultdict(int)
    instances_per_domain: Dict[Optional[int], int] = defaultdict(int)

    for instance in definition.instances.values():
        instances_per_domain[domain_of_instance(instance)] += 1

    for net in definition.nets.values():
        nets_per_domain[domain_of_net(net)] += 1
        reader_domains: Set[int] = set()
        for pin in net.sinks():
            if not isinstance(pin, InstancePin):
                continue
            if is_voter(pin.instance):
                continue  # voters are allowed to read all domains
            domain = domain_of_instance(pin.instance)
            if domain is not None:
                reader_domains.add(domain)
        driver_domains: Set[int] = set()
        for pin in net.drivers():
            if isinstance(pin, InstancePin):
                domain = domain_of_instance(pin.instance)
                if domain is not None:
                    driver_domains.add(domain)
        spanned = reader_domains | driver_domains
        if len(spanned) > 1:
            violations.append(net.name)

    return DomainIsolationReport(
        ok=not violations,
        violations=violations,
        nets_per_domain=dict(nets_per_domain),
        instances_per_domain=dict(instances_per_domain),
    )


# ----------------------------------------------------------------------
# Voter regions
# ----------------------------------------------------------------------
@dataclasses.dataclass
class VoterRegionReport:
    """Partition of a domain's nets into voter regions.

    A *voter region* is the set of nets between voter barriers: an upset
    confined to one region of one domain is corrected by that region's
    voters.  Two same-region upsets in two different domains defeat the TMR.
    """

    #: region id -> number of nets in the region (per single domain)
    region_sizes: Dict[int, int]
    #: net name -> region id (domain-0 nets only; regions are symmetric)
    net_regions: Dict[str, int]
    #: number of regions
    num_regions: int
    #: region id -> seed label ("voter:<voted net>", "ff:<instance>",
    #: "input:<net>" or "cone:<net>"); labels are domain-invariant except
    #: for the ``_tr<d>`` markers, which lets layout analyses match up the
    #: corresponding regions of different domains
    region_seeds: Dict[int, str] = dataclasses.field(default_factory=dict)

    def normalized_sizes(self) -> List[float]:
        total = sum(self.region_sizes.values())
        if total == 0:
            return []
        return [size / total for size in self.region_sizes.values()]

    def same_region_collision_probability(self) -> float:
        """Probability that two independently, uniformly chosen nets fall in
        the same voter region — the analytical proxy for the fraction of
        domain-crossing routing upsets that defeat the TMR."""
        fractions = self.normalized_sizes()
        return sum(f * f for f in fractions)


def compute_voter_regions(definition: Definition,
                          domain: int = 0) -> VoterRegionReport:
    """Group the nets of one domain into voter regions.

    Traversal starts at voter outputs, primary inputs and flip-flop outputs
    of the chosen domain and flows forward; a region ends where a voter
    input or a state-element input is reached (a flip-flop output seeds its
    own region, so the flood must not run through the register).  Because
    the three domains are structurally identical it is sufficient to
    analyse one of them.

    Every seed class gets its own region: each voter output feeding the
    domain, each flip-flop / register-stage output, and each disjoint
    primary-input cone.  Undomained nets (shared clocks, final voted
    outputs) are skipped during the flood-fill and never appear in
    ``region_sizes``.
    """
    region_of_net: Dict[str, int] = {}
    region_seeds: Dict[int, str] = {}
    next_region = 0

    def net_in_domain(net: Net) -> bool:
        net_domain = domain_of_net(net)
        if net_domain is not None:
            return net_domain == domain
        # Undomained nets (shared clocks, final outputs) are skipped.
        return False

    def is_region_barrier(instance: Instance) -> bool:
        return is_voter(instance) or is_register_component(instance)

    def assign(net: Net, region: int) -> None:
        stack = [net]
        while stack:
            current = stack.pop()
            if current.name in region_of_net or not net_in_domain(current):
                continue
            region_of_net[current.name] = region
            for pin in current.sinks():
                if not isinstance(pin, InstancePin):
                    continue
                instance = pin.instance
                if is_region_barrier(instance):
                    continue  # regions end at voter / register inputs
                inst_domain = domain_of_instance(instance)
                if inst_domain is not None and inst_domain != domain:
                    continue
                for out_pin in instance.pins():
                    if out_pin.is_driver and out_pin.net is not None:
                        if out_pin.net.name not in region_of_net:
                            stack.append(out_pin.net)

    def seed(net: Net, label: str) -> None:
        nonlocal next_region
        if net.name in region_of_net or not net_in_domain(net):
            return
        region_seeds[next_region] = label
        assign(net, next_region)
        next_region += 1

    # 1. Voter outputs feeding this domain, in definition order.
    for instance in definition.instances.values():
        if not is_voter(instance):
            continue
        voted = instance.properties.get(VOTED_NET_PROPERTY)
        for pin in instance.pins():
            if pin.is_driver and pin.net is not None:
                seed(pin.net, f"voter:{voted}" if voted is not None
                     else f"voter:{instance.name}")

    # 2. Flip-flop / register-stage outputs of this domain.
    for instance in definition.instances.values():
        if is_voter(instance) or not is_register_component(instance):
            continue
        for pin in instance.pins():
            if pin.is_driver and pin.net is not None:
                seed(pin.net, f"ff:{instance.name}")

    # 3. Each disjoint primary-input cone.
    for pin in definition.top_pins():
        if isinstance(pin, TopPin) and pin.is_driver and pin.net is not None:
            seed(pin.net, f"input:{pin.net.name}")

    # 4. Any remaining cone (constants, undriven islands), deterministically.
    for name in sorted(definition.nets):
        net = definition.nets[name]
        if net.name not in region_of_net:
            seed(net, f"cone:{net.name}")

    region_sizes: Dict[int, int] = defaultdict(int)
    for region in region_of_net.values():
        region_sizes[region] += 1
    return VoterRegionReport(dict(region_sizes), region_of_net,
                             len(region_sizes), region_seeds)


# ----------------------------------------------------------------------
# Analytical robustness estimate
# ----------------------------------------------------------------------
@dataclasses.dataclass
class RobustnessEstimate:
    """Closed-form estimate of TMR vulnerability to routing upsets."""

    #: probability that a domain-crossing short defeats the TMR
    cross_domain_defeat_probability: float
    #: number of voter regions per domain
    num_regions: int
    #: voters inserted (all domains, all roles)
    voter_count: int
    #: nets per domain considered by the model
    nets_per_domain: int

    def score(self, voter_cost_weight: float = 0.0) -> float:
        """Lower is better; optionally penalise voter count (area cost)."""
        return self.cross_domain_defeat_probability + \
            voter_cost_weight * self.voter_count


def estimate_robustness(definition: Definition,
                        domain: int = 0,
                        implementation=None) -> RobustnessEstimate:
    """Estimate how often a random domain-crossing short defeats the TMR.

    The netlist-only model assumes the two shorted signals are chosen
    uniformly from two different domains (no floorplanning — the paper's
    setting) and that the TMR fails exactly when both fall into the same
    voter region.  When an *implementation*
    (:class:`~repro.pnr.flow.Implementation`) is supplied, the uniform-net
    proxy is replaced by the layout-aware defeat probability of
    :mod:`repro.analysis.layout`, computed over the actual fault list of
    the routed design.
    """
    if implementation is not None:
        if implementation.design is not definition:
            raise ValueError(
                f"implementation implements "
                f"{implementation.design.name!r}, not the given "
                f"definition {definition.name!r}; pass "
                f"implementation.design (the layout-aware estimate is "
                f"computed from the routed design)")
        from ..analysis.layout import layout_robustness

        return layout_robustness(implementation, domain)
    regions = compute_voter_regions(definition, domain)
    voters = [inst for inst in definition.instances.values()
              if is_voter(inst)]
    nets_in_domain = sum(regions.region_sizes.values())
    return RobustnessEstimate(
        cross_domain_defeat_probability=
        regions.same_region_collision_probability(),
        num_regions=regions.num_regions,
        voter_count=len(voters),
        nets_per_domain=nets_in_domain,
    )


def cross_domain_signal_pairs(definition: Definition) -> int:
    """Count nets of different domains sharing at least one sink instance.

    After TMR insertion the only legitimate cross-domain sinks are voters;
    this count therefore measures how much inter-domain wiring the chosen
    partition introduces (more voters = more cross-domain nets brought close
    together — the effect the paper identifies as the downside of
    over-partitioning).
    """
    pairs = 0
    for instance in definition.instances.values():
        if not is_voter(instance):
            continue
        domains_seen: Set[int] = set()
        for pin in instance.pins():
            if pin.is_driver or pin.net is None:
                continue
            domain = domain_of_net(pin.net)
            if domain is not None:
                domains_seen.add(domain)
        if len(domains_seen) > 1:
            pairs += len(domains_seen) * (len(domains_seen) - 1) // 2
    return pairs
