"""Logic-partition strategies: which component outputs receive voter barriers.

The paper's central question is how to partition the triplicated logic with
majority voters: too few voters and a single routing upset bridging two
redundant domains defeats the TMR (Figure 1, upset "b"); too many voters and
the area/performance cost explodes while the extra inter-domain voter wiring
itself becomes a liability.  A :class:`PartitionStrategy` answers the
question "after which components do we place voters?" for a component-level
netlist.

The three partitions evaluated in the paper map onto:

* ``TMR_p1`` (maximum)  -> :class:`AllComponents`
* ``TMR_p2`` (medium)   -> ``ByComponentType(("adder",))`` — one multiplier +
  one adder per voted block in the FIR structure
* ``TMR_p3`` (minimum)  -> :class:`NoPartition`
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, List, Sequence, Set

from ..cells.library import FF_CELLS
from ..netlist.ir import Definition, Instance
from ..netlist.traversal import instance_fanin_nets, net_driver_instances


def is_register_component(instance: Instance) -> bool:
    """True when a component instance is a pure register stage.

    A component is a register when it is explicitly tagged
    (``properties["component"] == "register"``), when it is itself a
    flip-flop primitive, or when every leaf cell of its definition is a
    flip-flop.
    """
    tag = instance.properties.get("component")
    if tag is not None:
        return tag == "register"
    if instance.reference.name in FF_CELLS:
        return True
    if instance.is_primitive:
        return False
    counts = instance.reference.count_primitives()
    if not counts:
        return False
    return all(cell in FF_CELLS for cell in counts)


def combinational_components(definition: Definition) -> List[Instance]:
    """Component instances that are not register stages (insertion targets)."""
    return [inst for inst in definition.instances.values()
            if not is_register_component(inst)]


def register_components(definition: Definition) -> List[Instance]:
    """Component instances that are register stages."""
    return [inst for inst in definition.instances.values()
            if is_register_component(inst)]


def component_topological_order(definition: Definition) -> List[Instance]:
    """Topological order of component instances (registers cut the graph).

    Used by granularity-based strategies so that "every k-th component"
    follows dataflow order rather than dictionary order.
    """
    instances = list(definition.instances.values())
    position = {inst.name: index for index, inst in enumerate(instances)}
    indegree: Dict[str, int] = {inst.name: 0 for inst in instances}
    dependents: Dict[str, List[str]] = {inst.name: [] for inst in instances}
    registers = {inst.name for inst in instances
                 if is_register_component(inst)}

    for inst in instances:
        if inst.name in registers:
            continue
        for net in instance_fanin_nets(inst):
            for driver in net_driver_instances(net):
                if driver.parent is not definition:
                    continue
                if driver.name in registers or driver.name == inst.name:
                    continue
                dependents[driver.name].append(inst.name)
                indegree[inst.name] += 1

    ready = sorted([name for name, count in indegree.items() if count == 0],
                   key=lambda n: position[n])
    order: List[Instance] = []
    while ready:
        name = ready.pop(0)
        order.append(definition.instances[name])
        for dependent in dependents[name]:
            indegree[dependent] -= 1
            if indegree[dependent] == 0:
                ready.append(dependent)
        ready.sort(key=lambda n: position[n])
    if len(order) != len(instances):
        remaining = [inst for inst in instances
                     if inst not in order]
        order.extend(sorted(remaining, key=lambda i: position[i.name]))
    return order


class PartitionStrategy(abc.ABC):
    """Selects the component instances whose outputs receive voter barriers."""

    name = "abstract"

    @abc.abstractmethod
    def select(self, definition: Definition) -> Set[str]:
        """Return the names of instances to vote (register stages excluded —
        they are governed separately by ``TMRConfig.vote_registers``)."""

    def describe(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class NoPartition(PartitionStrategy):
    """Minimum partition: voters only at the outermost outputs (TMR_p3)."""

    name = "min"

    def select(self, definition: Definition) -> Set[str]:
        return set()


class AllComponents(PartitionStrategy):
    """Maximum partition: a voter barrier after every component (TMR_p1)."""

    name = "max"

    def select(self, definition: Definition) -> Set[str]:
        return {inst.name for inst in combinational_components(definition)}


class ByComponentType(PartitionStrategy):
    """Vote the outputs of components whose ``component`` tag matches.

    ``ByComponentType(("adder",))`` reproduces the paper's medium partition:
    in the FIR structure each adder closes a block containing one multiplier
    and one adder.
    """

    name = "by-type"

    def __init__(self, component_types: Sequence[str]) -> None:
        self.component_types = tuple(component_types)

    def select(self, definition: Definition) -> Set[str]:
        selected = set()
        for inst in combinational_components(definition):
            if inst.properties.get("component") in self.component_types:
                selected.add(inst.name)
        return selected

    def describe(self) -> str:
        return f"by-type({','.join(self.component_types)})"

    def __repr__(self) -> str:
        return f"ByComponentType({self.component_types!r})"


class ExplicitPartition(PartitionStrategy):
    """Vote the outputs of an explicit list of component instances."""

    name = "explicit"

    def __init__(self, instance_names: Iterable[str]) -> None:
        self.instance_names = set(instance_names)

    def select(self, definition: Definition) -> Set[str]:
        missing = self.instance_names - set(definition.instances)
        if missing:
            raise KeyError(
                "explicit partition references unknown instances: "
                + ", ".join(sorted(missing)[:5]))
        return {name for name in self.instance_names
                if not is_register_component(definition.instances[name])}

    def describe(self) -> str:
        return f"explicit({len(self.instance_names)})"


class EveryKth(PartitionStrategy):
    """Vote every *k*-th combinational component along dataflow order.

    ``k = 1`` degenerates to :class:`AllComponents`; a very large ``k``
    approaches :class:`NoPartition`.  This is the knob the partition
    optimizer sweeps.
    """

    name = "every-kth"

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k

    def select(self, definition: Definition) -> Set[str]:
        order = [inst for inst in component_topological_order(definition)
                 if not is_register_component(inst)]
        return {inst.name for index, inst in enumerate(order)
                if (index + 1) % self.k == 0}

    def describe(self) -> str:
        return f"every-{self.k}th"

    def __repr__(self) -> str:
        return f"EveryKth({self.k})"


#: Friendly aliases used by experiment drivers and the CLI.
NAMED_STRATEGIES = {
    "max": AllComponents,
    "min": NoPartition,
    "all": AllComponents,
    "none": NoPartition,
}


def strategy_from_name(name: str, **kwargs) -> PartitionStrategy:
    """Build a strategy from a short name (``max``, ``min``, ``every:k``,
    ``type:adder,multiplier``)."""
    if name in NAMED_STRATEGIES:
        return NAMED_STRATEGIES[name]()
    if name.startswith("every:"):
        return EveryKth(int(name.split(":", 1)[1]))
    if name.startswith("type:"):
        return ByComponentType(tuple(name.split(":", 1)[1].split(",")))
    raise ValueError(f"unknown partition strategy {name!r}")
