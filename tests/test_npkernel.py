"""Tests for the numpy-compiled fault-simulation kernel and its backend.

Mirrors tests/test_bitparallel.py for the compiled sweep: whole-design
lane sweeps (full and cone mode, heterogeneous overlay shards) must demux
lane by lane into the traces the scalar :class:`Simulator` produces, LUT
INIT sweeps must agree for every truth table, and the campaign-level
:class:`NumpyBackend` must be a bit-identical drop-in for SerialBackend —
including ``first_mismatch_cycle`` — under every upset model, while its
cross-cone scheduler keeps the packed lanes nearly full.

Everything here needs the optional numpy dependency and is skipped
without it (the suite stays green numpy-less).
"""

import random

import pytest

from repro.cells import logic
from repro.faults import (CampaignConfig, NumpyBackend, clear_cache,
                          run_campaign)
from repro.sim import (FaultOverlay, Simulator, SourceOverride,
                       compile_vector_program, have_numpy, simulate_lanes,
                       simulate_lanes_numpy)

pytestmark = pytest.mark.skipif(not have_numpy(),
                                reason="numpy not installed")


def _unpack_lane(v, k, lane):
    if not (k >> lane) & 1:
        return logic.UNKNOWN
    return (v >> lane) & 1


def _stimulus(design, cycles, seed):
    rng = random.Random(seed)
    stimulus = []
    for _ in range(cycles):
        cycle = {}
        for name, binding in design.inputs.items():
            if name.upper().startswith("CLK"):
                continue
            cycle[name] = rng.getrandbits(binding.width)
        stimulus.append(cycle)
    return stimulus


def _heterogeneous_overlays(design):
    """A mixed shard: INIT flip, pin overrides, FF upsets, net blends."""
    lut = next(g for g in design.gates if g.kind == 0 and g.num_inputs)
    flip_flop = design.flip_flops[0]
    overlays = []

    flipped = FaultOverlay(description="LUT INIT flip")
    flipped.lut_init_overrides[lut.index] = lut.init ^ 1
    flipped.seed_nets = [lut.output_net]
    overlays.append(flipped)

    floating = FaultOverlay(description="open on a LUT input")
    floating.gate_pin_overrides[(lut.index, 0)] = SourceOverride.floating()
    floating.seed_nets = [n for n in lut.input_nets if n >= 0][:1]
    overlays.append(floating)

    stuck = FaultOverlay(description="FF power-up flip")
    stuck.ff_init_overrides[flip_flop.index] = 1 - flip_flop.init_value
    stuck.seed_nets = [flip_flop.q_net]
    overlays.append(stuck)

    detached = FaultOverlay(description="FF data detached")
    detached.ff_pin_overrides[(flip_flop.index, "D")] = \
        SourceOverride.floating()
    detached.seed_nets = [flip_flop.q_net]
    overlays.append(detached)

    # A runtime pin blend (reads live state every settle pass): the
    # compiled sweep must route it through the stacked scatter path.
    other_net = next(n for n in lut.input_nets if n >= 0)
    shorted = FaultOverlay(description="input bridged to another net")
    shorted.gate_pin_overrides[(lut.index, min(1, lut.num_inputs - 1))] = \
        SourceOverride.blend_of(other_net, lut.output_net, "short")
    shorted.seed_nets = [lut.output_net]
    overlays.append(shorted)
    return overlays


def _assert_lanes_match_scalar(design, overlays, stimulus, golden,
                               cone_of, width=None):
    program = compile_vector_program(design)
    result = simulate_lanes_numpy(
        program, overlays, stimulus, golden,
        passes=max(o.required_passes() for o in overlays),
        cone=cone_of, width=width or max(len(overlays), 7),
        record_lane_outputs=True)
    for lane, overlay in enumerate(overlays):
        simulator = Simulator(design, overlay)
        if cone_of is not None:
            trace = simulator.run(stimulus, golden=golden, cone=cone_of)
        else:
            trace = simulator.run(stimulus)
        for cycle, expected in enumerate(trace.outputs):
            sampled = result.lane_outputs[cycle]
            for port, bits in expected.items():
                got = [_unpack_lane(v, k, lane) for v, k in sampled[port]]
                assert got == bits, (overlay.description, cycle, port)
    return result


class TestInitSweeps:
    def test_every_lut2_init_matches_scalar(self, tiny_fir_compiled):
        # One lane per possible truth table of one LUT: the compiled
        # batch stacks sixteen different specialized entries (constants,
        # buffers, inverters, two-input gates, full mux trees) and every
        # lane must still reproduce its scalar trace exactly.
        design = tiny_fir_compiled
        lut = next(g for g in design.gates
                   if g.kind == 0 and g.num_inputs == 2)
        overlays = []
        for init in range(16):
            overlay = FaultOverlay(description=f"INIT={init:04b}")
            overlay.lut_init_overrides[lut.index] = init
            overlay.seed_nets = [lut.output_net]
            overlays.append(overlay)
        stimulus = _stimulus(design, 6, seed=31)
        golden = Simulator(design).run(stimulus, record_nets=True)
        _assert_lanes_match_scalar(design, overlays, stimulus, golden,
                                   cone_of=None)

    def test_sampled_wide_lut_inits_match_scalar(self, tiny_fir_compiled):
        design = tiny_fir_compiled
        lut = max((g for g in design.gates if g.kind == 0),
                  key=lambda g: g.num_inputs)
        rng = random.Random(2005)
        overlays = []
        for _ in range(40):
            init = rng.getrandbits(1 << lut.num_inputs)
            overlay = FaultOverlay(description=f"INIT={init:#x}")
            overlay.lut_init_overrides[lut.index] = init
            overlay.seed_nets = [lut.output_net]
            overlays.append(overlay)
        stimulus = _stimulus(design, 6, seed=32)
        golden = Simulator(design).run(stimulus, record_nets=True)
        _assert_lanes_match_scalar(design, overlays, stimulus, golden,
                                   cone_of=None)


class TestWholeDesignSweeps:
    def test_full_mode_matches_scalar_per_lane(self, tiny_fir_compiled):
        design = tiny_fir_compiled
        stimulus = _stimulus(design, 6, seed=21)
        golden = Simulator(design).run(stimulus, record_nets=True)
        overlays = _heterogeneous_overlays(design)
        _assert_lanes_match_scalar(design, overlays, stimulus, golden,
                                   cone_of=None)

    def test_cone_mode_matches_scalar_per_lane(self, tiny_fir_compiled):
        design = tiny_fir_compiled
        stimulus = _stimulus(design, 6, seed=22)
        golden = Simulator(design).run(stimulus, record_nets=True)
        overlays = [o for o in _heterogeneous_overlays(design)
                    if o.required_passes() == 1]
        seeds = sorted({net for o in overlays for net in o.seed_nets})
        cone = design.fault_cone(seeds)
        _assert_lanes_match_scalar(design, overlays, stimulus, golden,
                                   cone_of=cone)

    def test_matches_bigint_kernel_outcomes(self, tiny_fir_compiled):
        # The two kernels share one contract: identical outcomes
        # (wrong_answer and first mismatching cycle) per lane.
        design = tiny_fir_compiled
        stimulus = _stimulus(design, 8, seed=25)
        golden = Simulator(design).run(stimulus, record_nets=True)
        overlays = _heterogeneous_overlays(design)
        program = compile_vector_program(design)
        passes = max(o.required_passes() for o in overlays)
        bigint = simulate_lanes(program, overlays, stimulus, golden,
                                passes=passes)
        compiled = simulate_lanes_numpy(program, overlays, stimulus,
                                        golden, passes=passes)
        assert [(o.wrong_answer, o.first_mismatch_cycle)
                for o in compiled.outcomes] == \
            [(o.wrong_answer, o.first_mismatch_cycle)
             for o in bigint.outcomes]

    def test_ghost_lanes_replay_golden(self, tiny_fir_compiled):
        design = tiny_fir_compiled
        stimulus = _stimulus(design, 5, seed=23)
        golden = Simulator(design).run(stimulus, record_nets=True)
        program = compile_vector_program(design)
        result = simulate_lanes_numpy(program, [FaultOverlay()], stimulus,
                                      golden, passes=1, width=9,
                                      record_lane_outputs=True)
        assert result.outcomes[0].wrong_answer is False
        assert result.outcomes[0].first_mismatch_cycle is None
        for cycle, expected in enumerate(golden.outputs):
            sampled = result.lane_outputs[cycle]
            for port, bits in expected.items():
                for lane in (0, 8):
                    got = [_unpack_lane(v, k, lane)
                           for v, k in sampled[port]]
                    assert got == bits

    def test_adjacent_init_faults_share_a_shard(self, tiny_fir_compiled):
        design = tiny_fir_compiled
        lut = next(g for g in design.gates
                   if g.kind == 0 and g.num_inputs >= 2)
        overlays = []
        for table_bit in range(4):
            overlay = FaultOverlay(description=f"INIT bit {table_bit}")
            overlay.lut_init_overrides[lut.index] = \
                lut.init ^ (1 << table_bit)
            overlay.seed_nets = [lut.output_net]
            overlays.append(overlay)
        stimulus = _stimulus(design, 6, seed=24)
        golden = Simulator(design).run(stimulus, record_nets=True)
        _assert_lanes_match_scalar(design, overlays, stimulus, golden,
                                   cone_of=None)

    def test_multiword_shards_keep_lanes_independent(self,
                                                     tiny_fir_compiled):
        # More lanes than one uint64 word, with the shard replicated so
        # high-word lanes carry real faults.
        design = tiny_fir_compiled
        base = _heterogeneous_overlays(design)
        overlays = (base * 16)[:70]
        stimulus = _stimulus(design, 6, seed=26)
        golden = Simulator(design).run(stimulus, record_nets=True)
        _assert_lanes_match_scalar(design, overlays, stimulus, golden,
                                   cone_of=None, width=70)


class TestNumpyBackendEquivalence:
    """NumpyBackend is a bit-identical drop-in for SerialBackend."""

    @staticmethod
    def _verdict_stream(result):
        return [(r.bit, r.category, r.has_effect, r.wrong_answer,
                 r.first_mismatch_cycle) for r in result.results]

    @pytest.mark.parametrize("case", range(4))
    def test_randomized_campaigns_bit_identical(
            self, tiny_fir_implementation, tiny_tmr_implementation, case):
        rng = random.Random(3000 + case)
        target = tiny_fir_implementation if case % 2 == 0 else \
            tiny_tmr_implementation
        config = CampaignConfig(
            num_faults=rng.randint(40, 90),
            workload_cycles=rng.randint(4, 8),
            seed=rng.randint(0, 10_000),
            workload_seed=rng.randint(0, 10_000),
            skip_cycles=rng.choice((0, 1)),
        )
        serial = run_campaign(target, config, backend="serial")
        compiled = run_campaign(
            target, config,
            backend=NumpyBackend(lane_width=rng.choice((4, 64, 1024))))
        assert self._verdict_stream(compiled) == \
            self._verdict_stream(serial)
        assert compiled.wrong_answers == serial.wrong_answers
        assert compiled.effect_table() == serial.effect_table()

    @pytest.mark.parametrize("upset_model",
                             ["single", "mbu:2", "accumulate:3"])
    def test_upset_models_bit_identical(self, tiny_fir_implementation,
                                        upset_model):
        config = CampaignConfig(num_faults=60, workload_cycles=6, seed=17,
                                upset_model=upset_model)
        serial = run_campaign(tiny_fir_implementation, config,
                              backend="serial")
        compiled = run_campaign(tiny_fir_implementation, config,
                                backend="numpy")
        assert self._verdict_stream(compiled) == \
            self._verdict_stream(serial)

    def test_oversampled_draw_bit_identical(self, tiny_fir_implementation):
        # The huge-scale regime in miniature: more injections than
        # programmable bits, so duplicates collapse onto shared lanes and
        # must demux back into per-injection verdicts.
        from repro.faults import FaultListManager

        population = len(FaultListManager(
            tiny_fir_implementation).build("design"))
        config = CampaignConfig(num_faults=population + 150,
                                workload_cycles=5, seed=11)
        serial = run_campaign(tiny_fir_implementation, config,
                              backend="serial")
        backend = NumpyBackend()
        compiled = run_campaign(tiny_fir_implementation, config,
                                backend=backend)
        assert compiled.injected == population + 150
        assert self._verdict_stream(compiled) == \
            self._verdict_stream(serial)
        stats = backend.last_run_stats
        assert stats["demuxed_faults"] == population + 150
        assert stats["unique_faults"] < stats["demuxed_faults"]


class TestCrossConePacking:
    def test_scheduler_packs_lanes_across_cones(self,
                                                tiny_fir_implementation):
        # Every effectful fault has its own cone; the packer must still
        # produce near-full shards (not one shard per cone).
        config = CampaignConfig(num_faults=120, workload_cycles=6, seed=9)
        backend = NumpyBackend()
        result = run_campaign(tiny_fir_implementation, config,
                              backend=backend)
        stats = backend.last_run_stats
        assert result.backend == "numpy"
        assert stats["packed_faults"] == sum(stat["lanes"]
                                             for stat in stats["shards"])
        # Coned faults pack into one union-cone shard (plus at most one
        # shard for faults without seed nets).
        assert len(stats["shards"]) <= 2
        assert stats["mean_lane_utilization"] >= 0.6
        assert stats["peak_lane_utilization"] <= 1.0

    def test_utilization_accounts_word_quantized_capacity(
            self, tiny_fir_implementation):
        config = CampaignConfig(num_faults=40, workload_cycles=5, seed=3)
        backend = NumpyBackend(lane_width=8)
        run_campaign(tiny_fir_implementation, config, backend=backend)
        stats = backend.last_run_stats
        # Capacity is per-shard ceil(lanes/64)*64 — an 8-lane shard still
        # occupies one 64-bit word.
        total_capacity = sum(((stat["lanes"] + 63) // 64) * 64
                             for stat in stats["shards"])
        assert stats["mean_lane_utilization"] == pytest.approx(
            stats["packed_faults"] / total_capacity)

    def test_narrow_lanes_still_bit_identical(self, tiny_fir_implementation):
        config = CampaignConfig(num_faults=80, workload_cycles=6, seed=5)
        serial = run_campaign(tiny_fir_implementation, config,
                              backend="serial")
        narrow = run_campaign(tiny_fir_implementation, config,
                              backend=NumpyBackend(lane_width=1))
        assert [(r.bit, r.wrong_answer, r.first_mismatch_cycle)
                for r in narrow.results] == \
            [(r.bit, r.wrong_answer, r.first_mismatch_cycle)
             for r in serial.results]


class TestProgramCache:
    def test_numpy_program_cached_across_campaigns(
            self, tiny_fir_implementation):
        from repro.faults import cache_stats

        config = CampaignConfig(num_faults=60, workload_cycles=5, seed=7)
        clear_cache()
        run_campaign(tiny_fir_implementation, config, backend="numpy")
        first = cache_stats()
        assert first["numpy_program_misses"] >= 1
        run_campaign(tiny_fir_implementation, config, backend="numpy")
        second = cache_stats()
        assert second["numpy_program_hits"] > first["numpy_program_hits"]
        assert second["numpy_program_misses"] == \
            first["numpy_program_misses"]


class TestOptionalDependency:
    def test_backend_unavailable_without_numpy(self, monkeypatch):
        from repro.faults import BackendUnavailableError
        from repro.sim import npkernel

        monkeypatch.setattr(npkernel, "_np", None)
        assert not have_numpy()
        with pytest.raises(BackendUnavailableError) as excinfo:
            NumpyBackend()
        assert "pip install" in str(excinfo.value)
        assert "vector" in str(excinfo.value)
