"""Tests for netlist traversal, flattening, cloning and validation."""

import pytest

from repro.cells import INIT_AND2, INIT_XOR2
from repro.netlist import (Netlist, NetlistBuilder, NetlistError,
                           clone_definition, flatten, logic_depth,
                           topological_levels, topological_order, uniquify,
                           validate_definition)
from repro.netlist.transform import remove_unconnected_instances
from repro.netlist.traversal import (fanin_cone, fanout_cone,
                                     multiply_driven_nets, undriven_nets)
from repro.cells.library import shared_cell_library
from repro.techmap import GateBuilder


def _two_level_module(netlist, name="mod"):
    builder = NetlistBuilder.new_module(netlist, name, "work",
                                        shared_cell_library())
    gates = GateBuilder(builder)
    a = builder.input("A", 1)[0]
    b = builder.input("B", 1)[0]
    c = builder.input("C", 1)[0]
    y = builder.output("Y", 1)[0]
    ab = gates.and2(a, b)
    gates.xor2(ab, c, y)
    return builder.finish()


class TestTraversal:
    def test_topological_levels_order(self, netlist):
        module = _two_level_module(netlist)
        levels = topological_levels(module)
        names_by_level = [[i.reference.name for i in level]
                          for level in levels]
        assert names_by_level[0] == ["LUT2"]
        assert names_by_level[1] == ["LUT2"]

    def test_topological_order_respects_dependencies(self, netlist):
        module = _two_level_module(netlist)
        order = topological_order(module)
        positions = {inst.name: index for index, inst in enumerate(order)}
        and_gate = [i for i in module.instances.values()
                    if i.properties.get("INIT") == INIT_AND2][0]
        xor_gate = [i for i in module.instances.values()
                    if i.properties.get("INIT") == INIT_XOR2][0]
        assert positions[and_gate.name] < positions[xor_gate.name]

    def test_logic_depth(self, netlist):
        module = _two_level_module(netlist)
        assert logic_depth(module) == 2

    def test_combinational_loop_detection(self, netlist, cells):
        builder = NetlistBuilder.new_module(netlist, "loop", "work", cells)
        gates = GateBuilder(builder)
        a = builder.wire("a")
        b = gates.inv(a)
        gates.inv(b, a)  # closes a combinational loop
        with pytest.raises(NetlistError):
            topological_levels(builder.definition)

    def test_fanin_fanout_cones(self, netlist):
        module = _two_level_module(netlist)
        xor_gate = [i for i in module.instances.values()
                    if i.properties.get("INIT") == INIT_XOR2][0]
        and_gate = [i for i in module.instances.values()
                    if i.properties.get("INIT") == INIT_AND2][0]
        assert and_gate in fanin_cone(xor_gate)
        assert xor_gate in fanout_cone(and_gate)

    def test_undriven_and_multiply_driven(self, netlist, cells):
        builder = NetlistBuilder.new_module(netlist, "bad", "work", cells)
        gates = GateBuilder(builder)
        floating = builder.wire("floating")
        out = builder.output("Y", 1)[0]
        gates.inv(floating, out)
        assert undriven_nets(builder.definition)
        other = builder.wire("contested")
        gates.inv(out, other)
        gates.inv(floating, other)
        assert multiply_driven_nets(builder.definition)


class TestCloneAndUniquify:
    def test_clone_preserves_structure(self, netlist):
        module = _two_level_module(netlist)
        clone = clone_definition(module, "mod_copy")
        assert set(clone.ports) == set(module.ports)
        assert set(clone.instances) == set(module.instances)
        assert set(clone.nets) == set(module.nets)
        # deep copy: editing the clone does not touch the original
        clone.remove_instance(next(iter(clone.instances.values())))
        assert len(clone.instances) == len(module.instances) - 1

    def test_uniquify_splits_shared_definitions(self, netlist, cells):
        child_builder = NetlistBuilder.new_module(netlist, "child", "work",
                                                  cells)
        gate = GateBuilder(child_builder)
        a = child_builder.input("A", 1)[0]
        y = child_builder.output("Y", 1)[0]
        gate.inv(a, y)
        child = child_builder.finish()

        top_builder = NetlistBuilder.new_module(netlist, "parent", "work",
                                                cells)
        x = top_builder.input("X", 1)[0]
        mid = top_builder.wire("mid")
        out = top_builder.output("OUT", 1)[0]
        top_builder.submodule(child, "c1", A=x, Y=mid)
        top_builder.submodule(child, "c2", A=mid, Y=out)
        top = top_builder.finish(set_top=True)

        uniquify(netlist)
        references = {inst.reference.name for inst in top.instances.values()}
        assert len(references) == 2


class TestFlatten:
    def test_flatten_counts(self, tiny_fir, tiny_fir_flat):
        _netlist, _spec, top, _components = tiny_fir
        hierarchical_counts = top.count_primitives()
        flat_counts = tiny_fir_flat.count_primitives()
        assert hierarchical_counts == flat_counts
        assert all(inst.is_primitive
                   for inst in tiny_fir_flat.instances.values())

    def test_flatten_port_preservation(self, tiny_fir, tiny_fir_flat):
        _netlist, _spec, top, _components = tiny_fir
        assert set(tiny_fir_flat.ports) == set(top.ports)
        for name, port in top.ports.items():
            assert tiny_fir_flat.ports[name].width == port.width

    def test_flatten_is_valid(self, tiny_fir_flat):
        report = validate_definition(tiny_fir_flat)
        assert report.ok, str(report)

    def test_flatten_propagates_component_property(self, tiny_fir,
                                                   tiny_fir_flat):
        flat_props = {inst.properties.get("component")
                      for inst in tiny_fir_flat.instances.values()}
        assert "adder" in flat_props
        assert "multiplier" in flat_props

    def test_flatten_twice_raises_on_same_name(self, tiny_fir):
        netlist, _spec, top, _components = tiny_fir
        with pytest.raises(NetlistError):
            flatten(netlist, top, flat_name="fir_tiny_flat")

    def test_remove_unconnected_instances(self, netlist, cells):
        builder = NetlistBuilder.new_module(netlist, "dangling", "work",
                                            cells)
        builder.definition.add_instance(cells.definitions["LUT1"], "unused")
        removed = remove_unconnected_instances(builder.definition)
        assert removed == 1


class TestValidation:
    def test_clean_module_passes(self, netlist):
        module = _two_level_module(netlist)
        report = validate_definition(module)
        assert report.ok
        assert not report.errors

    def test_undriven_output_detected(self, netlist, cells):
        from repro.netlist.ir import Direction

        builder = NetlistBuilder.new_module(netlist, "noout", "work", cells)
        builder.definition.add_port("Y", Direction.OUTPUT)
        report = validate_definition(builder.definition)
        assert any(issue.kind == "undriven-output"
                   for issue in report.errors)

    def test_raise_if_errors(self, netlist, cells):
        builder = NetlistBuilder.new_module(netlist, "bad2", "work", cells)
        gates = GateBuilder(builder)
        out = builder.output("Y", 1)[0]
        gates.inv(builder.wire("undriven_input"), out)
        report = validate_definition(builder.definition)
        with pytest.raises(NetlistError):
            report.raise_if_errors()
