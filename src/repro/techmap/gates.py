"""Gate-level construction helpers that emit LUT primitives directly.

The RTL generators in :mod:`repro.rtl` express arithmetic in terms of simple
gates; :class:`GateBuilder` lowers each gate onto the smallest LUT primitive
that implements it (this is the "technology mapping" step of the flow — the
optional LUT-merging optimizer in :mod:`repro.techmap.mapper` then packs
chains of small LUTs into fuller LUT4s).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..cells import lut as lut_inits
from ..cells.library import lut_cell_for_inputs
from ..netlist.builder import NetlistBuilder
from ..netlist.ir import Net, NetlistError


class GateBuilder:
    """Lowers boolean gates onto LUT primitives inside one definition."""

    def __init__(self, builder: NetlistBuilder) -> None:
        if builder.cell_library is None:
            raise NetlistError("GateBuilder requires a cell library")
        self.builder = builder
        self.definition = builder.definition
        self.cells = builder.cell_library

    # ------------------------------------------------------------------
    # Core LUT instantiation
    # ------------------------------------------------------------------
    def lut(self, init: int, inputs: Sequence[Net],
            output: Optional[Net] = None,
            name_hint: str = "lut") -> Net:
        """Instantiate a LUT with the given INIT over *inputs* (I0 first)."""
        count = len(inputs)
        if not 1 <= count <= 4:
            raise NetlistError(f"LUT must have 1..4 inputs, got {count}")
        reference = lut_cell_for_inputs(self.cells, count)
        out = output if output is not None else self.builder.wire(
            self.definition.make_unique_name(name_hint))
        instance = self.definition.add_instance(
            reference, self.definition.make_unique_name(name_hint))
        instance.properties["INIT"] = init
        for index, net in enumerate(inputs):
            instance.connect(f"I{index}", net, 0)
        instance.connect("O", out, 0)
        return out

    # ------------------------------------------------------------------
    # Named gates
    # ------------------------------------------------------------------
    def buf(self, a: Net, output: Optional[Net] = None) -> Net:
        return self.lut(lut_inits.INIT_BUF, [a], output, "buf")

    def inv(self, a: Net, output: Optional[Net] = None) -> Net:
        return self.lut(lut_inits.INIT_INV, [a], output, "inv")

    def and2(self, a: Net, b: Net, output: Optional[Net] = None) -> Net:
        return self.lut(lut_inits.INIT_AND2, [a, b], output, "and")

    def or2(self, a: Net, b: Net, output: Optional[Net] = None) -> Net:
        return self.lut(lut_inits.INIT_OR2, [a, b], output, "or")

    def xor2(self, a: Net, b: Net, output: Optional[Net] = None) -> Net:
        return self.lut(lut_inits.INIT_XOR2, [a, b], output, "xor")

    def xnor2(self, a: Net, b: Net, output: Optional[Net] = None) -> Net:
        return self.lut(lut_inits.INIT_XNOR2, [a, b], output, "xnor")

    def nand2(self, a: Net, b: Net, output: Optional[Net] = None) -> Net:
        return self.lut(lut_inits.INIT_NAND2, [a, b], output, "nand")

    def nor2(self, a: Net, b: Net, output: Optional[Net] = None) -> Net:
        return self.lut(lut_inits.INIT_NOR2, [a, b], output, "nor")

    def andnot2(self, a: Net, b: Net, output: Optional[Net] = None) -> Net:
        """a AND (NOT b)."""
        return self.lut(lut_inits.INIT_ANDNOT2, [a, b], output, "andnot")

    def and3(self, a: Net, b: Net, c: Net, output: Optional[Net] = None) -> Net:
        return self.lut(lut_inits.INIT_AND3, [a, b, c], output, "and3")

    def or3(self, a: Net, b: Net, c: Net, output: Optional[Net] = None) -> Net:
        return self.lut(lut_inits.INIT_OR3, [a, b, c], output, "or3")

    def xor3(self, a: Net, b: Net, c: Net, output: Optional[Net] = None) -> Net:
        return self.lut(lut_inits.INIT_XOR3, [a, b, c], output, "xor3")

    def mux2(self, select: Net, if_zero: Net, if_one: Net,
             output: Optional[Net] = None) -> Net:
        """2:1 mux; ``if_zero`` selected when *select* = 0."""
        return self.lut(lut_inits.INIT_MUX2, [if_zero, if_one, select],
                        output, "mux")

    def majority3(self, a: Net, b: Net, c: Net,
                  output: Optional[Net] = None) -> Net:
        """Majority-of-three — the TMR voter function in one LUT."""
        return self.lut(lut_inits.INIT_MAJ3, [a, b, c], output, "maj")

    # ------------------------------------------------------------------
    # Arithmetic bit slices
    # ------------------------------------------------------------------
    def half_adder(self, a: Net, b: Net) -> Tuple[Net, Net]:
        """Return (sum, carry)."""
        return self.xor2(a, b), self.and2(a, b)

    def full_adder(self, a: Net, b: Net, carry_in: Net) -> Tuple[Net, Net]:
        """Return (sum, carry_out) — one XOR3 LUT plus one MAJ3 LUT."""
        total = self.xor3(a, b, carry_in)
        carry = self.majority3(a, b, carry_in)
        return total, carry

    def full_subtractor(self, a: Net, b: Net, borrow_in: Net) -> Tuple[Net, Net]:
        """Return (difference, borrow_out) for a - b."""
        diff = self.xor3(a, b, borrow_in)
        borrow = self.lut(
            lut_inits.init_from_function(
                lambda x, y, bin_: ((1 - x) & y) | ((1 - x) & bin_) | (y & bin_),
                3),
            [a, b, borrow_in], None, "borrow")
        return diff, borrow

    # ------------------------------------------------------------------
    # Word helpers
    # ------------------------------------------------------------------
    def invert_word(self, word: Sequence[Net]) -> List[Net]:
        return [self.inv(bit) for bit in word]

    def constant(self, value: int) -> Net:
        return self.builder.power() if value else self.builder.ground()

    def reduce_or(self, nets: Sequence[Net]) -> Net:
        """OR-reduce an arbitrary number of nets with a LUT tree."""
        remaining = list(nets)
        if not remaining:
            return self.builder.ground()
        while len(remaining) > 1:
            next_level: List[Net] = []
            index = 0
            while index < len(remaining):
                chunk = remaining[index:index + 4]
                index += 4
                if len(chunk) == 1:
                    next_level.append(chunk[0])
                elif len(chunk) == 2:
                    next_level.append(self.or2(chunk[0], chunk[1]))
                elif len(chunk) == 3:
                    next_level.append(self.or3(chunk[0], chunk[1], chunk[2]))
                else:
                    next_level.append(self.lut(lut_inits.INIT_OR4, chunk,
                                               None, "or4"))
            remaining = next_level
        return remaining[0]

    def equal_const(self, word: Sequence[Net], value: int) -> Net:
        """Comparator: 1 when *word* equals the unsigned constant *value*."""
        matched: List[Net] = []
        for position, bit in enumerate(word):
            if (value >> position) & 1:
                matched.append(bit)
            else:
                matched.append(self.inv(bit))
        # AND-reduce
        remaining = matched
        while len(remaining) > 1:
            next_level: List[Net] = []
            index = 0
            while index < len(remaining):
                chunk = remaining[index:index + 4]
                index += 4
                if len(chunk) == 1:
                    next_level.append(chunk[0])
                elif len(chunk) == 2:
                    next_level.append(self.and2(chunk[0], chunk[1]))
                elif len(chunk) == 3:
                    next_level.append(self.and3(chunk[0], chunk[1], chunk[2]))
                else:
                    next_level.append(self.lut(lut_inits.INIT_AND4, chunk,
                                               None, "and4"))
            remaining = next_level
        return remaining[0] if remaining else self.builder.power()
