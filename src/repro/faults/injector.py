"""Fault Injection Manager: inject one configuration upset and classify it.

For every selected bit the manager flips the bit in a copy of the bitstream
(the faulty bitstream the paper downloads into the device), derives the
behavioural overlay through the fault models, re-simulates the workload over
the fault's fan-out cone against the recorded golden trace, and compares the
outputs cycle by cycle — a *Wrong Answer* when any output ever differs from
the golden device's.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from ..fpga.config import Resource
from ..pnr.flow import Implementation
from ..sim.compile import CompiledDesign
from ..sim.golden import compare_traces
from ..sim.simulator import SimulationTrace, Simulator
from .models import FaultEffect, FaultModeler


@dataclasses.dataclass
class FaultResult:
    """Outcome of injecting one configuration upset."""

    bit: int
    resource_kind: str
    category: str
    has_effect: bool
    wrong_answer: bool
    first_mismatch_cycle: Optional[int]
    detail: str = ""

    @property
    def silent(self) -> bool:
        return not self.wrong_answer


class FaultInjectionManager:
    """Runs single-fault experiments against a golden reference."""

    def __init__(self, implementation: Implementation,
                 compiled: CompiledDesign,
                 stimulus: Sequence[Dict[str, int]],
                 output_ports: Optional[Sequence[str]] = None,
                 skip_cycles: int = 0) -> None:
        self.implementation = implementation
        self.compiled = compiled
        self.stimulus = list(stimulus)
        self.output_ports = list(output_ports) if output_ports else None
        self.skip_cycles = skip_cycles
        self.modeler = FaultModeler(implementation, compiled)
        #: the golden device run: full simulation with every net recorded so
        #: that faulty runs can be confined to the fault's fan-out cone
        self.golden: SimulationTrace = Simulator(compiled).run(
            self.stimulus, record_nets=True)

    # --------------------------------------------------------------
    def golden_outputs(self) -> SimulationTrace:
        return self.golden

    def inject(self, bit: int) -> FaultResult:
        """Inject a single bit flip and classify its outcome."""
        effect = self.modeler.effect_of_bit(bit)
        return self._evaluate(effect)

    def inject_effect(self, effect: FaultEffect) -> FaultResult:
        """Evaluate an already-modelled effect (used by the campaign runner)."""
        return self._evaluate(effect)

    # --------------------------------------------------------------
    def _evaluate(self, effect: FaultEffect) -> FaultResult:
        resource_kind = effect.resource[0]
        if not effect.has_effect:
            return FaultResult(
                bit=effect.bit,
                resource_kind=resource_kind,
                category=effect.category,
                has_effect=False,
                wrong_answer=False,
                first_mismatch_cycle=None,
                detail=effect.detail,
            )

        # The faulty bitstream: flip the bit in a copy (kept faithful to the
        # paper's flow even though the simulator consumes the overlay).
        faulty_bitstream = self.implementation.bitstream.copy()
        faulty_bitstream.flip_bit(effect.bit)

        cone = self.compiled.fault_cone(effect.overlay.seed_nets) \
            if effect.overlay.seed_nets else None
        simulator = Simulator(self.compiled, effect.overlay)
        if cone is not None:
            trace = simulator.run(self.stimulus, golden=self.golden,
                                  cone=cone)
        else:
            trace = simulator.run(self.stimulus)
        comparison = compare_traces(trace, self.golden,
                                    ports=self.output_ports,
                                    skip_cycles=self.skip_cycles)
        return FaultResult(
            bit=effect.bit,
            resource_kind=resource_kind,
            category=effect.category,
            has_effect=True,
            wrong_answer=comparison.wrong_answer,
            first_mismatch_cycle=comparison.first_mismatch_cycle,
            detail=effect.detail,
        )
