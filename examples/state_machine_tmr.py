"""TMR for state-machine logic: voters in the feedback path.

Section 2 of the paper distinguishes *Throughput Logic* (the FIR filter)
from *State-machine Logic* — counters, accumulators, sequencers — where "the
register cannot be locked in a wrong value, and for this reason there is a
voter for each redundant logic part in the feedback path, making the system
able to recover by itself".

This example demonstrates exactly that self-recovery on a counter: a
flip-flop upset in one domain is corrected at the next clock edge when the
registers are voted, and persists forever when they are not.

Run with ``python examples/state_machine_tmr.py``.
"""

from repro.core import NoPartition, TMRConfig, apply_tmr
from repro.netlist import Netlist, flatten
from repro.rtl import up_counter
from repro.sim import CompiledDesign, FaultOverlay, Simulator


def run_counter(compiled, overlay=None, cycles=8):
    stimulus = [{f"R_tr{d}": 0 for d in range(3)}
                | {f"CE_tr{d}": 1 for d in range(3)}
                for _ in range(cycles)]
    simulator = Simulator(compiled, overlay) if overlay else \
        Simulator(compiled)
    trace = simulator.run(stimulus, record_nets=True)
    return trace.output_ints("Q", signed=False), trace


def domain_state_agrees(compiled, trace, domain=0, reference_domain=1):
    """Whether the internal flip-flop state of *domain* matches another
    domain's at the end of the run (i.e. the corrupted domain re-converged)."""
    last = trace.ff_states[-1]
    state = {d: [] for d in (domain, reference_domain)}
    for flip_flop in compiled.flip_flops:
        d = flip_flop.instance.properties.get("domain")
        if d in state:
            state[d].append(last[flip_flop.index])
    return state[domain] == state[reference_domain]


def corrupt_one_domain(compiled):
    """Flip the power-up value of one domain-0 state flip-flop."""
    victim = next(ff for ff in compiled.flip_flops
                  if ff.instance.properties.get("domain") == 0)
    return FaultOverlay(description=f"SEU in {victim.name}",
                        ff_init_overrides={victim.index: 1})


def main() -> None:
    netlist = Netlist("state_machine")
    counter = up_counter(netlist, width=4)
    netlist.set_top(counter)

    # Voted registers: the feedback path goes through majority voters.
    voted = apply_tmr(netlist, counter,
                      TMRConfig(partition=NoPartition(), vote_registers=True,
                                name_suffix="_voted"))
    # Unvoted registers: triplication only (not recommended for feedback).
    unvoted = apply_tmr(netlist, counter,
                        TMRConfig(partition=NoPartition(),
                                  vote_registers=False,
                                  name_suffix="_unvoted"))

    reference, _ = run_counter(CompiledDesign(
        flatten(netlist, voted.definition, flat_name="cnt_ref")))
    print("fault-free count:", reference)

    compiled_voted = CompiledDesign(
        flatten(netlist, voted.definition, flat_name="cnt_voted"))
    faulty_voted, voted_trace = run_counter(
        compiled_voted, corrupt_one_domain(compiled_voted))
    voted_recovered = domain_state_agrees(compiled_voted, voted_trace)
    print(f"voted registers, one domain corrupted:    {faulty_voted} "
          f"(corrupted domain re-converged: {voted_recovered})")

    compiled_unvoted = CompiledDesign(
        flatten(netlist, unvoted.definition, flat_name="cnt_unvoted"))
    faulty_unvoted, unvoted_trace = run_counter(
        compiled_unvoted, corrupt_one_domain(compiled_unvoted))
    unvoted_recovered = domain_state_agrees(compiled_unvoted, unvoted_trace)
    print(f"unvoted registers, one domain corrupted:  {faulty_unvoted} "
          f"(corrupted domain re-converged: {unvoted_recovered})")

    assert faulty_voted == reference, \
        "voters in the feedback path must make the counter self-recover"
    assert voted_recovered and not unvoted_recovered
    print("\nwith voters in the feedback path the corrupted domain reloads "
          "the majority value and re-converges; without them its state "
          "diverges forever and a second upset would break the output.")


if __name__ == "__main__":
    main()
