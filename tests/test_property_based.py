"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.cells import (init_from_function, logic, truth_table)
from repro.cells.lut import INIT_MAJ3
from repro.netlist import Netlist, flatten
from repro.rtl import (FirSpec, build_fir, constant_multiplier, fir_reference,
                       min_output_width, ripple_carry_adder)
from repro.sim import CompiledDesign, Simulator, stimulus_from_samples

logic_values = st.sampled_from([logic.ZERO, logic.ONE, logic.UNKNOWN])
known_values = st.sampled_from([0, 1])


class TestLogicProperties:
    @given(a=logic_values, b=logic_values)
    def test_and_or_commutative(self, a, b):
        assert logic.and_(a, b) == logic.and_(b, a)
        assert logic.or_(a, b) == logic.or_(b, a)
        assert logic.xor_(a, b) == logic.xor_(b, a)

    @given(a=logic_values)
    def test_not_involution(self, a):
        assert logic.not_(logic.not_(a)) == a

    @given(a=logic_values, b=logic_values, c=logic_values)
    def test_majority_symmetry(self, a, b, c):
        reference = logic.majority(a, b, c)
        assert logic.majority(b, a, c) == reference
        assert logic.majority(c, b, a) == reference

    @given(a=known_values, b=known_values)
    def test_majority_masks_any_single_error(self, a, b):
        """The defining TMR property: one corrupted domain never changes the
        vote when the other two agree."""
        for corrupted in (0, 1, logic.UNKNOWN):
            assert logic.majority(a, a, corrupted) == a
            assert logic.majority(a, corrupted, a) == a
            assert logic.majority(corrupted, a, a) == a

    @given(value=st.integers(min_value=-512, max_value=511),
           width=st.integers(min_value=2, max_value=12))
    def test_int_bits_round_trip(self, value, width):
        bits = logic.int_to_bits(value, width)
        assert len(bits) == width
        unsigned = logic.bits_to_int(bits)
        assert unsigned == value % (1 << width)

    @given(inputs=st.lists(known_values, min_size=3, max_size=3))
    def test_lut_majority_equals_reference(self, inputs):
        assert logic.lut_eval(INIT_MAJ3, inputs, 3) == \
            logic.majority(*inputs)


class TestLutInitProperties:
    @given(table=st.lists(known_values, min_size=4, max_size=4))
    def test_truth_table_round_trip(self, table):
        init = sum(bit << position for position, bit in enumerate(table))
        assert truth_table(init, 2) == table

    @given(a=known_values, b=known_values, c=known_values)
    def test_init_from_function_agrees_with_function(self, a, b, c):
        function = lambda x, y, z: (x & y) ^ z
        init = init_from_function(function, 3)
        address = a | (b << 1) | (c << 2)
        assert (init >> address) & 1 == function(a, b, c)


class TestArithmeticProperties:
    @settings(max_examples=25, deadline=None)
    @given(width=st.integers(min_value=3, max_value=7),
           a=st.integers(min_value=-64, max_value=63),
           b=st.integers(min_value=-64, max_value=63))
    def test_adder_matches_modular_arithmetic(self, width, a, b):
        mask = (1 << width) - 1
        a &= mask
        b &= mask
        netlist = Netlist("prop")
        adder = ripple_carry_adder(netlist, width)
        netlist.set_top(adder)
        compiled = CompiledDesign(flatten(netlist, adder))
        trace = Simulator(compiled).run([{"A": a, "B": b}])
        result = trace.output_ints("S", signed=False)[0]
        assert result == (a + b) & mask

    @settings(max_examples=20, deadline=None)
    @given(coefficient=st.integers(min_value=-20, max_value=20),
           value=st.integers(min_value=-8, max_value=7))
    def test_constant_multiplier_matches_python(self, coefficient, value):
        netlist = Netlist("prop")
        width_out = max(10, abs(coefficient).bit_length() + 5)
        mult = constant_multiplier(netlist, coefficient, 4, width_out)
        netlist.set_top(mult)
        compiled = CompiledDesign(flatten(netlist, mult))
        trace = Simulator(compiled).run([{"A": value}])
        assert trace.output_ints("P")[0] == coefficient * value

    @settings(max_examples=10, deadline=None)
    @given(taps=st.integers(min_value=1, max_value=5),
           data_width=st.integers(min_value=3, max_value=6),
           seed=st.integers(min_value=0, max_value=1000))
    def test_fir_always_matches_reference(self, taps, data_width, seed):
        import random

        spec = FirSpec.scaled(taps, data_width, name=f"fir_prop_{taps}_{data_width}")
        netlist = Netlist("prop")
        top, _components = build_fir(netlist, spec)
        compiled = CompiledDesign(flatten(netlist, top))
        generator = random.Random(seed)
        samples = [generator.randint(-(1 << (data_width - 1)),
                                     (1 << (data_width - 1)) - 1)
                   for _ in range(8)]
        trace = Simulator(compiled).run(stimulus_from_samples(samples))
        assert trace.output_ints("DOUT") == fir_reference(spec, samples)

    @given(data_width=st.integers(min_value=2, max_value=12),
           coefficients=st.lists(st.integers(min_value=-128, max_value=128),
                                 min_size=1, max_size=12))
    def test_min_output_width_is_sufficient(self, data_width, coefficients):
        width = min_output_width(coefficients, data_width)
        total_gain = sum(abs(c) for c in coefficients)
        # Both signed extremes of the accumulated output must fit.
        most_negative = -total_gain * (1 << (data_width - 1))
        most_positive = total_gain * ((1 << (data_width - 1)) - 1)
        assert most_negative >= -(1 << (width - 1))
        assert most_positive <= (1 << (width - 1)) - 1


class TestNetlistProperties:
    @settings(max_examples=20, deadline=None)
    @given(width=st.integers(min_value=1, max_value=10))
    def test_flatten_preserves_primitive_counts(self, width):
        netlist = Netlist("prop")
        adder = ripple_carry_adder(netlist, width)
        netlist.set_top(adder)
        flat = flatten(netlist, adder)
        assert flat.count_primitives() == adder.count_primitives()

    @settings(max_examples=15, deadline=None)
    @given(width=st.integers(min_value=2, max_value=8))
    def test_compiled_design_net_indices_bijective(self, width):
        netlist = Netlist("prop")
        adder = ripple_carry_adder(netlist, width)
        netlist.set_top(adder)
        flat = flatten(netlist, adder)
        compiled = CompiledDesign(flat)
        assert len(compiled.net_index) == compiled.num_nets
        assert sorted(compiled.net_index.values()) == \
            list(range(compiled.num_nets))
