"""Entry point for ``python -m repro.devtools.lint``."""

import sys

from .cli import main

if __name__ == "__main__":
    try:
        exit_code = main()
        sys.stdout.flush()
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not a lint failure.
        sys.stderr.close()
        exit_code = 0
    sys.exit(exit_code)
