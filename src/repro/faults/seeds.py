"""Deterministic seed derivation for reproducible random substreams.

Several layers draw random numbers from one user-facing campaign seed:
the fault-list permutation, the with-replacement oversampling tail of
``huge``-scale draws, and — with the service layer — sharded workers that
re-derive parts of a campaign independently.  Feeding the *same* raw seed
into more than one ``random.Random`` is a correlation footgun: two
consumers that happen to make the same sequence of calls draw identical
values.

:func:`derive_seed` fixes that with labeled substreams.

**Determinism contract**

* ``derive_seed(base, *path)`` is a pure function of ``base`` and the
  string forms of ``path`` — the same inputs produce the same seed in
  every process, on every platform, under every ``PYTHONHASHSEED``
  (it hashes with SHA-256, never with :func:`hash`).
* Distinct paths yield statistically independent streams: a consumer
  seeded with ``derive_seed(s, "a")`` never tracks one seeded with
  ``derive_seed(s, "b")`` or with the raw ``s``.
* :func:`split_shards` partitions ``n`` indexed items into ``shards``
  contiguous, non-overlapping ranges that cover ``range(n)`` exactly —
  the schedule the sharded campaign backend uses, so a worker can
  re-derive *its own* slice of a task list from ``(n, shards, shard)``
  alone without materializing the rest.

Changing this module's derivation is a breaking change for every
recorded oversampled draw; treat it like a tool-version bump.
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Tuple

#: Python's Mersenne twister accepts arbitrary ints; 63 bits keeps the
#: derived seed a cheap machine word everywhere else (json, C extensions).
_SEED_BITS = 63


def derive_seed(base: int, *path: object) -> int:
    """A reproducible substream seed for ``(base, *path)``.

    ``path`` elements are converted with :class:`str`; use stable labels
    (``"oversample"``, ``("shard", 3)``) rather than objects with
    identity-based reprs.
    """
    digest = hashlib.sha256()
    digest.update(str(int(base)).encode())
    for part in path:
        digest.update(b"|")
        digest.update(str(part).encode())
    return int.from_bytes(digest.digest()[:8], "big") % (1 << _SEED_BITS)


def substream(base: int, *path: object) -> random.Random:
    """A :class:`random.Random` seeded on the labeled substream."""
    return random.Random(derive_seed(base, *path))


def split_shards(count: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous ``[start, stop)`` ranges partitioning ``range(count)``.

    Deterministic, non-overlapping and covering: concatenating the ranges
    in order reproduces ``range(count)`` exactly, and any worker can
    compute its own range from ``(count, shards, index)``.  Early shards
    receive the remainder, so sizes differ by at most one.
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    shards = min(shards, count) if count else 1
    base, remainder = divmod(count, shards)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for index in range(shards):
        stop = start + base + (1 if index < remainder else 0)
        ranges.append((start, stop))
        start = stop
    return ranges
