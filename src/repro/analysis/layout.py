"""Layout-aware dependability analysis of implemented TMR designs.

The paper's central claim is that TMR defeat is a property of the *routed
layout*: a single configuration upset only defeats the voting when the
wrong values it creates reach one voter barrier from two redundant domains
at once.  The analytical model in :mod:`repro.core.analysis` approximates
that over the unplaced netlist with a uniform-net assumption; this module
computes it exactly for one implemented design by walking the routed
implementation — the :class:`~repro.faults.models.FaultModeler`'s
bit-to-overlay mapping over the :class:`~repro.fpga.config.ConfigLayout`,
the route trees and the compiled netlist.

For every configuration bit of the fault list the
:class:`LayoutAnalyzer` answers "where can this upset's effect go?" by
propagating a taint from the overlay's entry nets through the compiled
design.  Voter LUTs *absorb* the taint (a majority voter with at most one
corrupted input provably outputs the golden value, and the simulator's
three-valued LUT evaluation honours that even for unknowns); flip-flops
propagate it; output ports observe it.  The propagation yields one of
three static verdicts per bit:

* **silent** — the overlay is empty, or its taint dead-ends before any
  output port and before any voter (the fault cone provably contains no
  observable net).  Campaigns may skip these bits outright: the
  ``prefilter="static"`` knob of
  :class:`~repro.faults.campaign.CampaignConfig` synthesizes their
  verdicts instead of simulating them.
* **single-domain-correctable** — the taint reaches voter barriers, but
  every voter sees at most one corrupted input; the redundancy is
  predicted to out-vote the upset.
* **cross-domain-defeat-capable** — the taint reaches an output port
  without passing a voter (this includes every observable upset of the
  unprotected design and upsets past the final output voter), or some
  voter sees corrupted values on two or more inputs (the Figure 1 "upset
  b" mechanism: one routing short corrupting two domains inside the same
  voter region).

The defeat-capable set is a *superset* of the bits that can produce wrong
answers — the ``prediction-vs-campaign`` scenario cross-validates that
against measured campaigns — and the silent set is *sound*: a bit
predicted silent can never produce an output mismatch.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, \
    Set, Tuple

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the numpy-less CI leg
    _np = None

from ..core.analysis import RobustnessEstimate, compute_voter_regions, \
    domain_of_net
from ..core.tmr import DOMAIN_SUFFIXES
from ..core.voters import VOTED_NET_PROPERTY, VOTER_PROPERTY, is_voter
from ..faults import categories
from ..faults.fault_list import FaultList, FaultListManager
from ..faults.models import FaultEffect, FaultModeler, _LUT_PIN_TO_SLOT
from ..fpga.config import KIND_LUT_BIT, KIND_PIP
from ..pnr.flow import Implementation
from ..sim.compile import CompiledDesign

#: Static per-bit verdicts of the layout analyzer.
SILENT = "silent"
CORRECTABLE = "single-domain-correctable"
DEFEAT = "cross-domain-defeat-capable"
CLASSIFICATIONS = (SILENT, CORRECTABLE, DEFEAT)


@dataclasses.dataclass(frozen=True)
class BitPrediction:
    """The static classification of one configuration bit."""

    bit: int
    resource_kind: str
    category: str
    classification: str
    has_effect: bool
    detail: str
    #: redundant domains that can carry a wrong value under this upset
    domains: Tuple[int, ...] = ()
    #: canonical voter barriers ("role:voted_net") the taint reaches
    barriers: Tuple[str, ...] = ()
    #: whether the taint reaches an output port without passing a voter
    reaches_output: bool = False

    @property
    def is_silent(self) -> bool:
        return self.classification == SILENT

    @property
    def is_defeat_capable(self) -> bool:
        return self.classification == DEFEAT


@dataclasses.dataclass
class DefeatMap:
    """Per-design static defeat map: one prediction per fault-list bit."""

    design: str
    mode: str
    predictions: Dict[int, BitPrediction]

    def __len__(self) -> int:
        return len(self.predictions)

    def classification_of(self, bit: int) -> Optional[str]:
        prediction = self.predictions.get(bit)
        return prediction.classification if prediction is not None else None

    def is_silent(self, bit: int) -> bool:
        """True only for bits *proved* silent (unknown bits are not)."""
        prediction = self.predictions.get(bit)
        return prediction is not None and prediction.is_silent

    def bits_of_class(self, classification: str) -> List[int]:
        return sorted(bit for bit, prediction in self.predictions.items()
                      if prediction.classification == classification)

    def silent_bits(self) -> FrozenSet[int]:
        return frozenset(self.bits_of_class(SILENT))

    def defeat_capable_bits(self) -> FrozenSet[int]:
        return frozenset(self.bits_of_class(DEFEAT))

    def counts(self) -> Dict[str, int]:
        counts = {classification: 0 for classification in CLASSIFICATIONS}
        for prediction in self.predictions.values():
            counts[prediction.classification] += 1
        return counts

    def cross_domain_bits(self) -> List[int]:
        """Bits whose effect can corrupt two or more redundant domains."""
        return sorted(bit for bit, prediction in self.predictions.items()
                      if len(prediction.domains) >= 2)

    def defeat_probability(self) -> float:
        """Fraction of domain-crossing upsets predicted to defeat the TMR.

        The layout-aware analogue of
        :meth:`~repro.core.analysis.VoterRegionReport.same_region_collision_probability`:
        among the fault-list bits that corrupt signals of two or more
        redundant domains at once, the share whose corruptions meet at a
        common voter barrier (or escape voting entirely).
        """
        crossing = self.cross_domain_bits()
        if not crossing:
            return 0.0
        defeats = sum(
            1 for bit in crossing
            if self.predictions[bit].classification == DEFEAT)
        return defeats / len(crossing)

    def summary(self) -> Dict[str, object]:
        """JSON-serializable digest for reports and the analyze stage."""
        by_category: Dict[str, Dict[str, int]] = {}
        for prediction in self.predictions.values():
            bucket = by_category.setdefault(
                prediction.category,
                {classification: 0 for classification in CLASSIFICATIONS})
            bucket[prediction.classification] += 1
        return {
            "design": self.design,
            "fault_list_mode": self.mode,
            "bits": len(self.predictions),
            "classes": self.counts(),
            "by_category": by_category,
            "cross_domain_bits": len(self.cross_domain_bits()),
            "layout_defeat_probability": round(self.defeat_probability(), 5),
        }


def _fast_prediction(bit: int, resource_kind: str, category: str,
                     classification: str, has_effect: bool, detail: str,
                     domains: Tuple[int, ...] = (),
                     barriers: Tuple[str, ...] = (),
                     reaches_output: bool = False) -> BitPrediction:
    """Construct a :class:`BitPrediction` without the frozen-dataclass
    ``object.__setattr__``-per-field cost.

    The bulk classifier builds one prediction per fault-list bit — tens
    of thousands per design — and the nine guarded field assignments of
    the generated ``__init__`` dominate that loop.  Field-by-field this
    is exactly the ordinary constructor (``__eq__``/pickle read the same
    instance ``__dict__``).
    """
    prediction = object.__new__(BitPrediction)
    prediction.__dict__.update(
        bit=bit, resource_kind=resource_kind, category=category,
        classification=classification, has_effect=has_effect,
        detail=detail, domains=domains, barriers=barriers,
        reaches_output=reaches_output)
    return prediction


@dataclasses.dataclass(frozen=True)
class _TaintSummary:
    """Forward closure of one seed net, with voters absorbing."""

    #: redundant domains of the tainted nets (None filtered out)
    domains: FrozenSet[int]
    #: (voter gate index, tainted input net) pairs where the taint stopped
    voter_hits: FrozenSet[Tuple[int, int]]
    #: whether an output port net was tainted (no voter in between)
    reaches_output: bool


class LayoutAnalyzer:
    """Classifies configuration bits of one implemented design.

    The analyzer cross-references the implementation's fault models with
    the compiled netlist: per bit it derives the overlay's *entry nets*
    (the first nets that can carry a wrong value), pushes a taint through
    gates and flip-flops — voter LUTs absorb it, recording which inputs
    arrived corrupted — and classifies the bit by what the taint reached.

    *effect_lookup* lets callers share a memoized
    :meth:`~repro.faults.models.FaultModeler.effect_of_bit` (for example
    the campaign cache's), so building the map also warms the per-bit
    effect cache the campaign engine reads.
    """

    def __init__(self, implementation: Implementation,
                 compiled: Optional[CompiledDesign] = None,
                 modeler: Optional[FaultModeler] = None,
                 effect_lookup: Optional[Callable[[int], FaultEffect]] = None,
                 vectorize: Optional[bool] = None) -> None:
        self.implementation = implementation
        self.compiled = compiled if compiled is not None else \
            CompiledDesign(implementation.design)
        self.modeler = modeler if modeler is not None else \
            FaultModeler(implementation, self.compiled)
        self._effect_of_bit = effect_lookup if effect_lookup is not None \
            else self.modeler.effect_of_bit
        self._build_structure()
        self._taint_memo: Dict[int, _TaintSummary] = {}
        # Vectorized taint propagation (default wherever numpy imports):
        # per-net closure bitsets swept over the whole net graph at once.
        # The per-seed python flood below stays as the numpy-less fallback
        # and the equivalence reference.
        if vectorize is None:
            vectorize = _np is not None
        self._vectorized = bool(vectorize) and _np is not None
        self._closure = None
        self._rows: Optional[List[int]] = None
        self._union_memo: Dict[int, Tuple] = {}
        self._signature_memo: Dict[object, Tuple] = {}
        self._sink_sig_memo: Dict[Tuple[str, object], Tuple] = {}

    # ------------------------------------------------------------------
    def _build_structure(self) -> None:
        compiled = self.compiled
        definition = self.implementation.design

        self._net_domain: List[Optional[int]] = [None] * compiled.num_nets
        for name, index in compiled.net_index.items():
            net = definition.nets.get(name)
            if net is not None:
                self._net_domain[index] = domain_of_net(net)

        self._net_sink_gates: Dict[int, List[int]] = {}
        self._net_sink_ffs: Dict[int, List[int]] = {}
        for gate in compiled.gates:
            for net in gate.input_nets:
                if net >= 0:
                    self._net_sink_gates.setdefault(net, []).append(
                        gate.index)
        for flip_flop in compiled.flip_flops:
            for net in (flip_flop.d_net, flip_flop.ce_net,
                        flip_flop.reset_net):
                if net >= 0:
                    self._net_sink_ffs.setdefault(net, []).append(
                        flip_flop.index)

        self._voter_gates: Dict[int, str] = {}
        for gate in compiled.gates:
            instance = gate.instance
            if instance is not None and is_voter(instance):
                self._voter_gates[gate.index] = _barrier_key(instance)

        self._output_nets: Set[int] = set()
        for binding in compiled.outputs.values():
            self._output_nets.update(net for net in binding.net_indices
                                     if net >= 0)

    # ------------------------------------------------------------------
    def _taint_of_net(self, seed: int) -> _TaintSummary:
        """Memoized forward closure of one net (voters absorb).

        Closures are unions over seeds, so multi-net entries combine the
        per-net memos instead of re-walking the graph.
        """
        memo = self._taint_memo.get(seed)
        if memo is not None:
            return memo
        tainted: Set[int] = set()
        voter_hits: Set[Tuple[int, int]] = set()
        reaches_output = False
        stack = [seed]
        gates = self.compiled.gates
        flip_flops = self.compiled.flip_flops
        while stack:
            net = stack.pop()
            if net in tainted:
                continue
            tainted.add(net)
            if net in self._output_nets:
                reaches_output = True
            for gate_index in self._net_sink_gates.get(net, ()):
                if gate_index in self._voter_gates:
                    voter_hits.add((gate_index, net))
                    continue  # the majority voter absorbs a single taint
                out = gates[gate_index].output_net
                if out >= 0 and out not in tainted:
                    stack.append(out)
            for ff_index in self._net_sink_ffs.get(net, ()):
                q_net = flip_flops[ff_index].q_net
                if q_net >= 0 and q_net not in tainted:
                    stack.append(q_net)
        domains = frozenset(domain for domain in
                            (self._net_domain[net] for net in tainted)
                            if domain is not None)
        memo = _TaintSummary(domains, frozenset(voter_hits), reaches_output)
        self._taint_memo[seed] = memo
        return memo

    # ------------------------------------------------------------------
    # Vectorized taint propagation
    # ------------------------------------------------------------------
    def _closure_bits(self):
        """Per-net taint-closure bitsets, swept with numpy all at once.

        Bit layout per net: one bit per redundant domain value present in
        the design, one ``reaches_output`` bit, then one bit per (voter
        gate, input position) slot.  ``closure[n]`` is the union of the
        local bits of every net reachable from ``n`` through non-voter
        gates and flip-flops — exactly the information
        :meth:`_taint_of_net`'s flood summarizes, for *all* seed nets in
        one fixpoint sweep over the sparse int-indexed net adjacency.
        """
        if self._closure is not None:
            return self._closure
        compiled = self.compiled
        num_nets = compiled.num_nets

        self._domain_values = sorted(
            {domain for domain in self._net_domain if domain is not None})
        domain_bit = {domain: index
                      for index, domain in enumerate(self._domain_values)}
        output_bit = len(self._domain_values)
        self._output_bit = output_bit

        slot_gate: List[int] = []
        slot_position: List[int] = []
        local_bits: List[Tuple[int, int]] = []
        for gate_index in sorted(self._voter_gates):
            inputs = compiled.gates[gate_index].input_nets
            for position, input_net in enumerate(inputs):
                slot = output_bit + 1 + len(slot_gate)
                slot_gate.append(gate_index)
                slot_position.append(position)
                if input_net >= 0:
                    local_bits.append((input_net, slot))
        self._slot_gate = slot_gate
        self._slot_position = slot_position

        for net, domain in enumerate(self._net_domain):
            if domain is not None:
                local_bits.append((net, domain_bit[domain]))
        for net in self._output_nets:
            local_bits.append((net, output_bit))

        words = (output_bit + 1 + len(slot_gate) + 63) // 64
        closure = _np.zeros((num_nets, words), dtype=_np.uint64)
        for net, bit in local_bits:
            closure[net, bit >> 6] |= _np.uint64(1 << (bit & 63))

        edges: List[Tuple[int, int]] = []
        for gate in compiled.gates:
            if gate.index in self._voter_gates or gate.output_net < 0:
                continue  # voters absorb the taint
            for net in gate.input_nets:
                if net >= 0:
                    edges.append((net, gate.output_net))
        for flip_flop in compiled.flip_flops:
            if flip_flop.q_net < 0:
                continue
            for net in (flip_flop.d_net, flip_flop.ce_net,
                        flip_flop.reset_net):
                if net >= 0:
                    edges.append((net, flip_flop.q_net))
        if edges:
            src = _np.asarray([edge[0] for edge in edges], dtype=_np.intp)
            dst = _np.asarray([edge[1] for edge in edges], dtype=_np.intp)
            while True:
                previous = closure.copy()
                _np.bitwise_or.at(closure, src, closure[dst])
                if _np.array_equal(closure, previous):
                    break
        self._closure = closure
        return closure

    def _row_ints(self) -> List[int]:
        """Each net's closure bitset as one python integer.

        Overlay signatures union entry-net closures; with integer rows
        that union is a single big-int OR per net (C speed) instead of
        python set/dict merges, and equal unions — however the entry sets
        differed — share one decoded verdict through ``_union_memo``.
        """
        rows = self._rows
        if rows is None:
            closure = self._closure_bits()
            data = _np.ascontiguousarray(
                closure.astype("<u8", copy=False)).tobytes()
            stride = closure.shape[1] * 8
            rows = [int.from_bytes(data[offset:offset + stride], "little")
                    for offset in range(0, len(data), stride)]
            self._rows = rows
            self._slot_mask = {
                (gate, position): 1 << (self._output_bit + 1 + slot)
                for slot, (gate, position)
                in enumerate(zip(self._slot_gate, self._slot_position))}
            self._output_mask = 1 << self._output_bit
        return rows

    def _verdict(self, entries: Set[int],
                 voter_pin_hits: Set[Tuple[int, int]],
                 reaches_output: bool) -> Tuple:
        """Memoized verdict of one overlay signature.

        Bits sharing an overlay signature (same entry nets, same direct
        voter-pin hits) share a verdict; the memo collapses the fault
        list's many same-net PIP bits onto one closure decode.
        """
        key = (frozenset(entries), frozenset(voter_pin_hits),
               reaches_output)
        resolved = self._signature_memo.get(key)
        if resolved is None:
            resolved = self._classify_signature(entries, voter_pin_hits,
                                                reaches_output)
            self._signature_memo[key] = resolved
        return resolved

    def _classify_signature(self, entries: Set[int],
                            voter_pin_hits: Set[Tuple[int, int]],
                            reaches_output: bool) -> Tuple:
        """Union the entry nets' decoded closure summaries into a verdict."""
        rows = self._row_ints()
        union = 0
        for entry in entries:
            union |= rows[entry]
        if voter_pin_hits:
            slot_mask = self._slot_mask
            for hit in voter_pin_hits:
                union |= slot_mask[hit]
        if reaches_output:
            union |= self._output_mask
        return self._union_verdict(union)

    def _union_verdict(self, union: int) -> Tuple:
        """Memoized verdict of one closure-bitset union integer."""
        resolved = self._union_memo.get(union)
        if resolved is not None:
            return resolved
        output_bit = self._output_bit
        domain_values = self._domain_values
        slot_gate = self._slot_gate
        slot_position = self._slot_position
        domains: Set[int] = set()
        corrupted_positions: Dict[int, Set[int]] = {}
        reaches_output = False
        remaining = union
        while remaining:
            low = remaining & -remaining
            index = low.bit_length() - 1
            remaining ^= low
            if index < output_bit:
                domains.add(domain_values[index])
            elif index == output_bit:
                reaches_output = True
            else:
                slot = index - output_bit - 1
                corrupted_positions.setdefault(slot_gate[slot], set()).add(
                    slot_position[slot])
        resolved = self._resolve(domains, corrupted_positions,
                                 reaches_output)
        self._union_memo[union] = resolved
        return resolved

    def _resolve(self, domains: Set[int],
                 corrupted_positions: Dict[int, Set[int]],
                 reaches_output: bool) -> Tuple:
        """Shared classification tail of the flood and vectorized paths."""
        # A voter input position carries one redundant domain's copy.
        defeated = False
        for positions in corrupted_positions.values():
            for position in positions:
                if position < 3:
                    domains.add(position)
            if len(positions) >= 2:
                defeated = True
        barriers = tuple(sorted({self._voter_gates[gate_index]
                                 for gate_index in corrupted_positions}))
        if reaches_output or defeated:
            classification = DEFEAT
        elif corrupted_positions:
            classification = CORRECTABLE
        else:
            # The taint dead-ended: no output, no voter — provably silent.
            classification = SILENT
        return (classification, tuple(sorted(domains)), barriers,
                reaches_output)

    # ------------------------------------------------------------------
    def _entry_nets(self, effect: FaultEffect
                    ) -> Tuple[Set[int], Set[Tuple[int, int]]]:
        """Nets that first carry a wrong value, plus direct voter-pin hits.

        An override on a voter's *input pin* corrupts only what that voter
        reads — the voter may still absorb it — so it is recorded as a
        ``(voter gate, input position)`` hit instead of tainting the
        voter's output.  An override of the voter's own truth table breaks
        the voter itself and taints its output.
        """
        overlay = effect.overlay
        gates = self.compiled.gates
        flip_flops = self.compiled.flip_flops
        entries: Set[int] = set()
        voter_pin_hits: Set[Tuple[int, int]] = set()

        for gate_index in overlay.lut_init_overrides:
            out = gates[gate_index].output_net
            if out >= 0:
                entries.add(out)
        for (gate_index, position) in overlay.gate_pin_overrides:
            if gate_index in self._voter_gates:
                voter_pin_hits.add((gate_index, position))
                continue
            out = gates[gate_index].output_net
            if out >= 0:
                entries.add(out)
        for (ff_index, _port) in overlay.ff_pin_overrides:
            q_net = flip_flops[ff_index].q_net
            if q_net >= 0:
                entries.add(q_net)
        for ff_index in overlay.ff_init_overrides:
            q_net = flip_flops[ff_index].q_net
            if q_net >= 0:
                entries.add(q_net)
        for net in overlay.net_overrides:
            if net >= 0:
                entries.add(net)
        return entries, voter_pin_hits

    # ------------------------------------------------------------------
    def classify_effect(self, effect: FaultEffect) -> BitPrediction:
        overlay = effect.overlay
        resource_kind = effect.resource[0]
        if not effect.has_effect:
            return BitPrediction(
                bit=effect.bit, resource_kind=resource_kind,
                category=effect.category, classification=SILENT,
                has_effect=False, detail=effect.detail)

        entries, voter_pin_hits = self._entry_nets(effect)
        direct_output = bool(overlay.output_pin_overrides)

        if self._vectorized:
            resolved = self._verdict(entries, voter_pin_hits, direct_output)
        else:
            domains: Set[int] = set()
            voter_hits: Set[Tuple[int, int]] = set()
            reaches_output = direct_output
            for entry in sorted(entries):
                summary = self._taint_of_net(entry)
                domains.update(summary.domains)
                voter_hits.update(summary.voter_hits)
                reaches_output = reaches_output or summary.reaches_output

            # Count *distinct corrupted input positions* per voter: a
            # taint arriving on input net N and a pin override of the
            # position that reads N are the same corrupted leg, not two.
            corrupted_positions: Dict[int, Set[int]] = {}
            for (gate_index, net) in voter_hits:
                inputs = self.compiled.gates[gate_index].input_nets
                positions = corrupted_positions.setdefault(gate_index, set())
                positions.update(position for position, input_net
                                 in enumerate(inputs) if input_net == net)
            for (gate_index, position) in voter_pin_hits:
                corrupted_positions.setdefault(gate_index, set()).add(
                    position)
            resolved = self._resolve(domains, corrupted_positions,
                                     reaches_output)

        classification, domains_tuple, barriers, reaches_output = resolved
        return BitPrediction(
            bit=effect.bit, resource_kind=resource_kind,
            category=effect.category, classification=classification,
            has_effect=True, detail=effect.detail,
            domains=domains_tuple, barriers=barriers,
            reaches_output=reaches_output)

    def classify_bit(self, bit: int) -> BitPrediction:
        return self.classify_effect(self._effect_of_bit(bit))

    # ------------------------------------------------------------------
    # Bulk classification
    # ------------------------------------------------------------------
    def _sink_signature(self, net_name: str, node) -> Tuple:
        """What corrupting net *net_name* downstream of *node* can touch.

        Returns ``(closure_union, num_sinks, num_overrides)`` — the
        overlay signature the routing fault models would produce by
        overriding every sink served through *node*, without
        materializing the overlay.  ``closure_union`` is the OR of the
        entry nets' closure-bitset integers (plus direct voter-pin slot
        bits and the output bit), ready for :meth:`_union_verdict`;
        ``num_sinks`` feeds the models' "N sink(s) ..." detail strings;
        ``num_overrides`` tells whether the overlay would be non-empty
        (sinks whose cell is absent from the compiled design attach no
        override).  Memoized per (net, node): every candidate PIP bit
        landing on the same routing node shares the answer.
        """
        key = (net_name, node)
        signature = self._sink_sig_memo.get(key)
        if signature is not None:
            return signature
        compiled = self.compiled
        gate_index_of = compiled.gate_index_by_name.get
        ff_index_of = compiled.ff_index_by_name.get
        rows = self._row_ints()
        slot_mask = self._slot_mask
        union = 0
        reaches_output = False
        overrides = 0
        specs = self.implementation.routing.routes[net_name] \
            .sinks_through(node)
        for spec in specs:
            if spec.cell is None:
                reaches_output = True
                overrides += 1
                continue
            gate_index = gate_index_of(spec.cell)
            if gate_index is not None:
                overrides += 1
                if gate_index in self._voter_gates:
                    position = int(spec.port[1:]) \
                        if spec.port.startswith("I") else 0
                    union |= slot_mask[(gate_index, position)]
                else:
                    out = compiled.gates[gate_index].output_net
                    if out >= 0:
                        union |= rows[out]
                continue
            ff_index = ff_index_of(spec.cell)
            if ff_index is not None:
                overrides += 1
                q_net = compiled.flip_flops[ff_index].q_net
                if q_net >= 0:
                    union |= rows[q_net]
        if reaches_output:
            union |= self._output_mask
        signature = (union, len(specs), overrides)
        self._sink_sig_memo[key] = signature
        return signature

    def _bulk_predictions(self, bits: Sequence[int]
                          ) -> Dict[int, BitPrediction]:
        """Classify a fault list without materializing per-bit overlays.

        Mirrors the buckets of :class:`~repro.faults.models.FaultModeler`
        bit for bit — same categories, same detail strings, same
        silent/has-effect decisions — but resolves each bucket with
        dictionary lookups and the memoized sink signatures instead of
        building a :class:`FaultEffect`.  Slice-configuration bits (a
        small minority with the most intricate modeling) still go
        through the reference per-bit path.  The equivalence suite
        asserts prediction-for-prediction equality against that path on
        every design.
        """
        implementation = self.implementation
        resources = implementation.resources
        routing = implementation.routing
        used_pips_get = resources.used_pips.get
        node_owner_get = routing.node_owner.get
        routes = routing.routes
        gate_index_of = self.compiled.gate_index_by_name.get
        gates = self.compiled.gates
        lut_sites: Dict[Tuple[int, int, str], object] = {}
        predictions: Dict[int, BitPrediction] = {}
        layout = implementation.layout
        resource_of = layout.resource_of
        resource_memo_get = layout._resource_by_bit.get
        sink_signature = self._sink_signature
        sig_memo_get = self._sink_sig_memo.get
        union_verdict = self._union_verdict
        rows = self._row_ints()
        # Memo hits are the overwhelmingly common case; look them up
        # without a function call (verdict tuples are never empty, so
        # ``or`` falls through exactly on a miss).
        union_memo_get = self._union_memo.get
        lut_site_at = resources.lut_site_at
        slot_of_pin = _LUT_PIN_TO_SLOT.get
        fast = _fast_prediction
        new = object.__new__
        cls = BitPrediction
        KIND_PIP_, KIND_LUT_BIT_ = KIND_PIP, KIND_LUT_BIT
        OPEN, CONFLICT, BRIDGE = categories.OPEN, categories.CONFLICT, \
            categories.BRIDGE
        ANTENNA, OTHERS, LUT = categories.INPUT_ANTENNA, categories.OTHERS, \
            categories.LUT

        def template(category: str, detail: str = "",
                     kind: str = KIND_PIP) -> Dict[str, object]:
            # Prebuilt __dict__ of a constant silent prediction; per bit
            # the loop copies it and patches the bit address (and, for
            # the per-bit-detail buckets, the detail string) in.
            return {"bit": -1, "resource_kind": kind,
                    "category": category, "classification": SILENT,
                    "has_effect": False, "detail": detail, "domains": (),
                    "barriers": (), "reaches_output": False}

        silent_open = template(OPEN)
        silent_conflict = template(CONFLICT)
        silent_bridge = template(BRIDGE)
        # Prebuilt __dict__ per distinct verdict, one table per bucket —
        # upsets with the same verdict share everything except bit and
        # detail.  Verdict tuples are interned in the union memo, so
        # object identity is a valid (and hash-free) key.
        open_tmpls: Dict[int, Dict[str, object]] = {}
        conflict_tmpls: Dict[int, Dict[str, object]] = {}
        bridge_tmpls: Dict[int, Dict[str, object]] = {}
        antenna_tmpls: Dict[int, Dict[str, object]] = {}
        lut_tmpls: Dict[int, Dict[str, object]] = {}

        def verdict_template(table: Dict[int, Dict[str, object]],
                             kind: str, category: str,
                             verdict: Tuple) -> Dict[str, object]:
            prebuilt = {"bit": -1, "resource_kind": kind,
                        "category": category,
                        "classification": verdict[0],
                        "has_effect": True, "detail": "",
                        "domains": verdict[1], "barriers": verdict[2],
                        "reaches_output": verdict[3]}
            table[id(verdict)] = prebuilt
            return prebuilt

        floating_bridge = template(
            BRIDGE,
            "used signal bridged to floating wire (no logical effect)")
        both_unused = template(OTHERS, "both ends unused")
        stray_wire = template(ANTENNA, "stray drive of an unused wire")
        stray_control = template(ANTENNA,
                                 "stray drive of an unused control pin")
        stray_input = template(ANTENNA, "stray drive of an unused LUT input")
        # Bridge bits into one destination node differ only in the
        # intruding net's name: the verdict tail is shared.
        bridge_tails: Dict[object, Tuple] = {}

        for bit in bits:
            resource = resource_memo_get(bit) or resource_of(bit)
            kind = resource[0]
            if kind == KIND_PIP_:
                pip = (resource[1], resource[2])
                source, destination = pip
                used_net = used_pips_get(pip)
                if used_net is not None:
                    # Open: every sink through the destination floats.
                    if used_net not in routes:
                        predictions[bit] = fast(
                            bit, kind, OPEN, SILENT, False,
                            "route tree missing")
                        continue
                    sig = sig_memo_get((used_net, destination)) or \
                        sink_signature(used_net, destination)
                    detail = f"{sig[1]} sink(s) of {used_net} float"
                    if not sig[2]:
                        prediction = new(cls)
                        contents = prediction.__dict__
                        contents.update(silent_open)
                        contents["bit"] = bit
                        contents["detail"] = detail
                        predictions[bit] = prediction
                        continue
                    verdict = union_memo_get(sig[0]) or union_verdict(sig[0])
                    tmpl = open_tmpls.get(id(verdict)) or verdict_template(
                        open_tmpls, kind, OPEN, verdict)
                    prediction = new(cls)
                    contents = prediction.__dict__
                    contents.update(tmpl)
                    contents["bit"] = bit
                    contents["detail"] = detail
                    predictions[bit] = prediction
                    continue
                source_net = node_owner_get(source)
                dest_net = node_owner_get(destination)
                if dest_net is not None and source_net is not None and \
                        source_net != dest_net:
                    if destination[0] == "wire":
                        # Conflict: both nets' downstream sinks see it.
                        category = CONFLICT
                        dsig = None if dest_net not in routes else \
                            sink_signature(dest_net, destination)
                        ssig = None
                        source_tree = routes.get(source_net)
                        if source_tree is not None and \
                                source in source_tree.nodes():
                            ssig = sink_signature(source_net, source)
                        if dsig is None:
                            sig = ssig
                        elif ssig is None:
                            sig = dsig
                        else:
                            sig = (dsig[0] | ssig[0], dsig[1] + ssig[1],
                                   dsig[2] + ssig[2])
                        num_sinks = sig[1] if sig is not None else 0
                        detail = (f"{num_sinks} sink(s) see the short of "
                                  f"{source_net} and {dest_net}")
                        prediction = new(cls)
                        contents = prediction.__dict__
                        if sig is None or not sig[2]:
                            contents.update(silent_conflict)
                        else:
                            verdict = union_memo_get(sig[0]) or \
                                union_verdict(sig[0])
                            contents.update(
                                conflict_tmpls.get(id(verdict))
                                or verdict_template(conflict_tmpls, kind,
                                                    category, verdict))
                        contents["bit"] = bit
                        contents["detail"] = detail
                        predictions[bit] = prediction
                        continue
                    # Bridge: only the invaded input's net suffers; the
                    # verdict tail is per destination, not per source.
                    tail = bridge_tails.get(destination)
                    if tail is None:
                        dsig = None if dest_net not in routes else \
                            sink_signature(dest_net, destination)
                        if dsig is None or not dsig[2]:
                            tail = (False, dsig[1] if dsig else 0, None)
                        else:
                            tail = (True, dsig[1], union_memo_get(dsig[0])
                                    or union_verdict(dsig[0]))
                        bridge_tails[destination] = tail
                    has_effect, num_sinks, verdict = tail
                    detail = (f"{num_sinks} sink(s) of {dest_net} "
                              f"shorted with {source_net}")
                    prediction = new(cls)
                    contents = prediction.__dict__
                    if not has_effect:
                        contents.update(silent_bridge)
                    else:
                        contents.update(
                            bridge_tmpls.get(id(verdict))
                            or verdict_template(bridge_tmpls, kind,
                                                BRIDGE, verdict))
                    contents["bit"] = bit
                    contents["detail"] = detail
                    predictions[bit] = prediction
                    continue
                if dest_net is not None and source_net is None:
                    prediction = new(cls)
                    contents = prediction.__dict__
                    contents.update(floating_bridge)
                    contents["bit"] = bit
                    predictions[bit] = prediction
                    continue
                if source_net is None or dest_net is not None:
                    # Both ends unused — or both owned by the same net.
                    prediction = new(cls)
                    contents = prediction.__dict__
                    contents.update(both_unused)
                    contents["bit"] = bit
                    predictions[bit] = prediction
                    continue
                # Antenna: a driven signal onto an unused node.
                if destination[0] != "ipin":
                    prediction = new(cls)
                    contents = prediction.__dict__
                    contents.update(stray_wire)
                    contents["bit"] = bit
                    predictions[bit] = prediction
                    continue
                _, x, y, pin = destination
                slot_info = slot_of_pin(pin)
                if slot_info is None:
                    prediction = new(cls)
                    contents = prediction.__dict__
                    contents.update(stray_control)
                    contents["bit"] = bit
                    predictions[bit] = prediction
                    continue
                slot, position = slot_info
                site_key = (x, y, slot)
                if site_key not in lut_sites:
                    lut_sites[site_key] = lut_site_at(x, y, slot)
                site = lut_sites[site_key]
                if site is None or position < site.logical_inputs:
                    prediction = new(cls)
                    contents = prediction.__dict__
                    contents.update(stray_input)
                    contents["bit"] = bit
                    predictions[bit] = prediction
                    continue
                gate_index = gate_index_of(site.cell)
                if gate_index is None:
                    predictions[bit] = fast(
                        bit, kind, ANTENNA, SILENT, False,
                        "cell not in compiled design")
                    continue
                output_net = gates[gate_index].output_net
                union = rows[output_net] if output_net >= 0 else 0
                verdict = union_memo_get(union) or union_verdict(union)
                prediction = new(cls)
                contents = prediction.__dict__
                contents.update(antenna_tmpls.get(id(verdict))
                                or verdict_template(antenna_tmpls, kind,
                                                    ANTENNA, verdict))
                contents["bit"] = bit
                contents["detail"] = \
                    f"unused input of {site.cell} driven by {source_net}"
                predictions[bit] = prediction
                continue
            if kind == KIND_LUT_BIT_:
                _, x, y, slot, table_bit = resource
                site_key = (x, y, slot)
                if site_key not in lut_sites:
                    lut_sites[site_key] = lut_site_at(x, y, slot)
                site = lut_sites[site_key]
                if site is None:
                    predictions[bit] = fast(
                        bit, kind, LUT, SILENT, False, "unused LUT site")
                    continue
                if table_bit >= (1 << site.logical_inputs):
                    predictions[bit] = fast(
                        bit, kind, LUT, SILENT, False,
                        "upset in unused truth-table region")
                    continue
                gate_index = gate_index_of(site.cell)
                if gate_index is None:
                    predictions[bit] = fast(
                        bit, kind, LUT, SILENT, False,
                        "cell not in compiled design")
                    continue
                output_net = gates[gate_index].output_net
                union = rows[output_net] if output_net >= 0 else 0
                verdict = union_memo_get(union) or union_verdict(union)
                prediction = new(cls)
                contents = prediction.__dict__
                contents.update(lut_tmpls.get(id(verdict))
                                or verdict_template(lut_tmpls, kind,
                                                    LUT, verdict))
                contents["bit"] = bit
                contents["detail"] = \
                    f"minterm {table_bit} of {site.cell} flipped"
                predictions[bit] = prediction
                continue
            # Slice configuration bits: reference per-bit path.
            predictions[bit] = self.classify_bit(bit)
        return predictions

    # ------------------------------------------------------------------
    def build_map(self, fault_list: Optional[FaultList] = None,
                  mode: str = "design") -> DefeatMap:
        """Classify every bit of *fault_list* (built on demand)."""
        if fault_list is None:
            fault_list = FaultListManager(self.implementation).build(mode)
        if self._vectorized:
            predictions = self._bulk_predictions(fault_list.bits)
        else:
            predictions = {bit: self.classify_bit(bit)
                           for bit in fault_list.bits}
        return DefeatMap(design=self.implementation.design.name,
                         mode=fault_list.mode, predictions=predictions)


def _barrier_key(instance) -> str:
    """Domain-invariant identity of a voter barrier.

    The three per-domain voter LUTs of one barrier share the original
    (pre-TMR) net they vote, so corruptions of different domains arriving
    at "the same barrier" compare equal under this key.
    """
    role = instance.properties.get(VOTER_PROPERTY, "voter")
    voted = instance.properties.get(VOTED_NET_PROPERTY)
    if voted is not None:
        return f"{role}:{voted}"
    name = instance.name
    for suffix in DOMAIN_SUFFIXES:
        name = name.replace(suffix, "_tr*")
    return f"{role}:{name}"


# ----------------------------------------------------------------------
# Map construction with campaign-cache memoization
# ----------------------------------------------------------------------
def defeat_map_for(implementation: Implementation,
                   mode: str = "design",
                   compiled: Optional[CompiledDesign] = None,
                   modeler: Optional[FaultModeler] = None,
                   effect_lookup: Optional[Callable[[int], FaultEffect]]
                   = None,
                   use_cache: bool = True) -> DefeatMap:
    """The (memoized) static defeat map of one implemented design.

    With *use_cache* the map is stored in the process-wide campaign cache
    next to the golden traces and fault effects, so repeated campaigns —
    and the ``prefilter="static"`` knob — classify each design once.
    """
    if use_cache:
        from ..faults.cache import get_cache
        from ..service.tier import active_tier

        cache = get_cache()
        entry = cache.entry_for(implementation)

        def build() -> DefeatMap:
            # Building the map dominates prefiltered campaigns, so an
            # in-memory miss reads through the persistent tier first: a
            # map built by any earlier process over a bit-identical
            # implementation is exactly this one.
            tier = active_tier()
            if tier is not None:
                stored = tier.load_defeat_map(entry.fingerprint, mode)
                if stored is not None:
                    return stored
            analyzer = LayoutAnalyzer(implementation, compiled=compiled,
                                      modeler=modeler,
                                      effect_lookup=effect_lookup)
            fault_list = entry.fault_list(mode, cache.stats)
            defeat_map = analyzer.build_map(fault_list)
            if tier is not None:
                tier.store_defeat_map(entry.fingerprint, mode, defeat_map)
            return defeat_map

        return entry.defeat_map(mode, build, cache.stats)
    analyzer = LayoutAnalyzer(implementation, compiled=compiled,
                              modeler=modeler, effect_lookup=effect_lookup)
    return analyzer.build_map(mode=mode)


# ----------------------------------------------------------------------
# Layout-aware robustness estimate
# ----------------------------------------------------------------------
def layout_robustness(implementation: Implementation,
                      domain: int = 0,
                      defeat_map: Optional[DefeatMap] = None,
                      use_cache: bool = True) -> RobustnessEstimate:
    """A :class:`~repro.core.analysis.RobustnessEstimate` from the layout.

    Replaces the uniform-net collision proxy with the measured share of
    domain-crossing fault-list bits whose corruptions meet at a common
    voter barrier (or bypass voting), and reads region/voter counts from
    the implemented flat netlist instead of the component-level one.
    """
    if defeat_map is None:
        defeat_map = defeat_map_for(implementation, use_cache=use_cache)
    definition = implementation.design
    regions = compute_voter_regions(definition, domain)
    voter_count = sum(1 for instance in definition.instances.values()
                      if is_voter(instance))
    return RobustnessEstimate(
        cross_domain_defeat_probability=defeat_map.defeat_probability(),
        num_regions=regions.num_regions,
        voter_count=voter_count,
        nets_per_domain=sum(regions.region_sizes.values()),
    )


def prediction_vs_campaign(defeat_map: DefeatMap,
                           campaign_results: Sequence
                           ) -> Dict[str, object]:
    """Cross-validate the static map against one measured campaign.

    The defeat-capable set must cover every bit that measured a wrong
    answer (``superset_holds``); silent predictions must never have
    measured one (``silent_sound``).  *campaign_results* is the
    ``results`` list of a :class:`~repro.faults.campaign.CampaignResult`.
    """
    measured_wrong: Set[int] = set()
    measured_silent_violations: List[int] = []
    injected_bits: Set[int] = set()
    for result in campaign_results:
        injected_bits.add(result.bit)
        if result.wrong_answer:
            measured_wrong.add(result.bit)
            if defeat_map.is_silent(result.bit):
                measured_silent_violations.append(result.bit)
    predicted_defeat = defeat_map.defeat_capable_bits()
    uncovered = sorted(measured_wrong - predicted_defeat)
    predicted_in_sample = predicted_defeat & injected_bits
    return {
        "injected_bits": len(injected_bits),
        "measured_wrong_bits": len(measured_wrong),
        "predicted_defeat_capable_in_sample": len(predicted_in_sample),
        "superset_holds": not uncovered,
        "uncovered_wrong_bits": uncovered[:20],
        "silent_sound": not measured_silent_violations,
        "silent_violations": sorted(measured_silent_violations)[:20],
        # How sharp the static prediction is: of the injected bits it
        # flagged defeat-capable, the share that measured wrong.
        "precision": round(len(measured_wrong & predicted_in_sample)
                           / len(predicted_in_sample), 4)
        if predicted_in_sample else None,
        "layout_defeat_probability":
            round(defeat_map.defeat_probability(), 5),
    }
