"""FPGA device model: fabric, configuration memory and bitstream generation."""

from .bitgen import (FlipFlopSite, LutSite, UsedResources,
                     compute_design_bit_stats, generate_bitstream)
from .config import (KIND_LUT_BIT, KIND_PIP, KIND_SLICE_CFG, LUT_BITS,
                     SLICE_CFG_BITS, BitstreamStats, ConfigLayout,
                     ConfigMemory, lut_bit, pip_resource, slice_cfg)
from .device import (DIRECTIONS, FF_SLOTS, LUT_SLOTS, SLICE_INPUT_PINS,
                     SLICE_OUTPUT_PINS, Device, DeviceSpec, PadSite)
from .routing import (Node, Pip, downhill, incoming_wires, ipin, node_kind,
                      node_name, node_tile, opin, pad_input, pad_output,
                      pips_into_tile, wire)
from .spartan2e import (PROFILES, TINY, XC2S15E, XC2S50E, XC2S200E, XC2S600E,
                        device_by_name, smallest_device_for)

__all__ = [
    "FlipFlopSite", "LutSite", "UsedResources", "compute_design_bit_stats",
    "generate_bitstream", "KIND_LUT_BIT", "KIND_PIP", "KIND_SLICE_CFG",
    "LUT_BITS", "SLICE_CFG_BITS", "BitstreamStats", "ConfigLayout",
    "ConfigMemory", "lut_bit", "pip_resource", "slice_cfg", "DIRECTIONS",
    "FF_SLOTS", "LUT_SLOTS", "SLICE_INPUT_PINS", "SLICE_OUTPUT_PINS",
    "Device", "DeviceSpec", "PadSite", "Node", "Pip", "downhill",
    "incoming_wires", "ipin", "node_kind", "node_name", "node_tile", "opin",
    "pad_input", "pad_output", "pips_into_tile", "wire", "PROFILES", "TINY",
    "XC2S15E", "XC2S50E", "XC2S200E", "XC2S600E", "device_by_name",
    "smallest_device_for",
]
