"""The campaign orchestrator: an asyncio job runner over the cache tier.

:class:`CampaignService` owns

* a :class:`~repro.service.jobs.JobQueue` (submissions, coalescing),
* an asyncio event loop on a daemon thread (so the service embeds in any
  host — the CLI's HTTP server, a test, a notebook — without requiring
  the host to be async),
* a semaphore bounding how many campaigns execute concurrently, each on
  its own worker thread via :func:`asyncio.to_thread`,
* the process-wide :class:`~repro.service.tier.SharedCacheTier`, which
  it activates so golden traces and defeat maps persist across jobs and
  across service restarts (the flow store rides inside the same tier).

Campaign *compute* does not run on the loop: a job is one synchronous
:func:`repro.scenarios.run_scenario` call on a worker thread, optionally
sharded across worker *processes* by the engine's ``sharded`` backend.
The loop only sequences jobs, which keeps submission and status queries
responsive while campaigns crunch.

Failure surfacing: any exception escaping a job — including
:class:`~repro.faults.engine.CampaignWorkerError` from a killed sharded
worker — marks the job ``failed`` with the formatted cause; it never
hangs the queue or the loop.
"""

from __future__ import annotations

import asyncio
import dataclasses
import threading
import time
import traceback
from typing import Dict, List, Optional, Tuple

from ..scenarios import run_scenario
from .jobs import Job, JobQueue, JobSpec
from .tier import SharedCacheTier, TierLike, activate_tier, resolve_tier

#: Default cap on concurrently executing jobs.  Two keeps a long campaign
#: from starving short ones while bounding memory (each running job holds
#: its pipeline context).
DEFAULT_MAX_PARALLEL = 2


class ServiceError(RuntimeError):
    """The service was used in an invalid state (not started, stopped)."""


class CampaignService:
    """Accepts :class:`JobSpec` submissions and runs them to reports.

    Parameters
    ----------
    tier:
        The shared warm-cache tier (a :class:`SharedCacheTier`, a
        directory path, or ``None`` to run without persistence).  The
        service activates it process-wide so every cache layer reads
        through it.
    max_parallel:
        Concurrently executing jobs (queue depth is unbounded).
    default_backend:
        Applied to submissions that do not pin a backend — the service
        default is the engine's ``sharded`` backend.  Normalization
        happens at submission time, so the job's fingerprint, its report
        provenance and a direct ``run_scenario`` call all agree.
    """

    def __init__(self, *, tier: TierLike = None,
                 max_parallel: int = DEFAULT_MAX_PARALLEL,
                 default_backend: Optional[str] = "sharded") -> None:
        if max_parallel < 1:
            raise ValueError("max_parallel must be at least 1")
        self.queue = JobQueue()
        self.tier: Optional[SharedCacheTier] = resolve_tier(tier)
        self.max_parallel = max_parallel
        self.default_backend = default_backend
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._futures: List["asyncio.Future"] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "CampaignService":
        with self._lock:
            if self._loop is not None:
                return self
            activate_tier(self.tier)
            self._loop = asyncio.new_event_loop()
            # The semaphore must be created on the service loop.
            self._semaphore = asyncio.Semaphore(self.max_parallel)
            self._thread = threading.Thread(
                target=self._loop.run_forever,
                name="repro-campaign-service", daemon=True)
            self._thread.start()
        return self

    def stop(self, timeout: Optional[float] = 30.0) -> None:
        """Drain running jobs, then stop the loop thread."""
        with self._lock:
            loop, thread = self._loop, self._thread
            self._loop = self._thread = self._semaphore = None
        if loop is None:
            return
        self.wait(timeout=timeout)
        loop.call_soon_threadsafe(loop.stop)
        if thread is not None:
            thread.join(timeout=5.0)
        loop.close()

    def __enter__(self) -> "CampaignService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> Job:
        """Queue *spec*; returns immediately with the (possibly shared) job.

        Identical in-flight submissions coalesce: the returned job may
        already be computing on behalf of an earlier submitter, and both
        observe the single result.
        """
        return self.submit_detailed(spec)[0]

    def submit_detailed(self, spec: JobSpec) -> Tuple[Job, bool]:
        """:meth:`submit`, also reporting whether *this* call coalesced.

        The flag comes straight from the queue's atomic submit — callers
        (the HTTP handler) must not infer it from shared counters, which
        race under concurrent submissions.
        """
        with self._lock:
            loop = self._loop
        if loop is None:
            raise ServiceError("service is not running; call start() first")
        if spec.backend is None and self.default_backend is not None:
            spec = dataclasses.replace(spec, backend=self.default_backend)
        job, created = self.queue.submit(spec)
        if created:
            future = asyncio.run_coroutine_threadsafe(
                self._run_job(job), loop)
            with self._lock:
                self._futures.append(future)
        return job, not created

    def run(self, spec: JobSpec,
            timeout: Optional[float] = None) -> Job:
        """Submit and block until the job settles (convenience)."""
        job = self.submit(spec)
        if not job.wait(timeout):
            raise TimeoutError(f"job {job.id} did not settle in {timeout}s")
        return job

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    async def _run_job(self, job: Job) -> None:
        assert self._semaphore is not None
        async with self._semaphore:
            await asyncio.to_thread(self._execute, job)

    def _execute(self, job: Job) -> None:
        self.queue.mark_running(job)

        def monitor(design: str, done: int, total: int) -> None:
            job.progress[design] = {"done": done, "total": total}

        try:
            report = run_scenario(
                job.spec.scenario,
                flow_cache=self.tier.flow_store if self.tier else None,
                progress_callback=monitor,
                **job.spec.overrides())
        except Exception as exc:
            tail = traceback.format_exception_only(type(exc), exc)[-1].strip()
            self.queue.fail(job, tail)
        else:
            self.queue.finish(job, report)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until every submitted job has settled."""
        with self._lock:
            futures = list(self._futures)
        deadline: Optional[float] = None
        if timeout is not None:
            deadline = time.monotonic() + timeout
        for future in futures:
            remaining: Optional[float] = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            try:
                future.result(timeout=remaining)
            except Exception:
                # Job failures are recorded on the job itself.
                pass
        return all(job.done_event.is_set() for job in self.queue.jobs())

    def stats(self) -> Dict[str, object]:
        out: Dict[str, object] = {"queue": self.queue.stats(),
                                  "max_parallel": self.max_parallel,
                                  "default_backend": self.default_backend}
        if self.tier is not None:
            out["tier"] = self.tier.summary()
        return out
