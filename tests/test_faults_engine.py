"""Tests for the campaign execution engine and the golden-trace cache.

The invariant the engine refactor must preserve: every backend produces
bit-identical campaign aggregates (wrong-answer percentages, Table 4
category counts, per-fault records) for the same sampled fault list.
"""

import pickle
import random

import pytest

from repro.faults import (BatchBackend, CampaignConfig, ExecutionBackend,
                          FaultTask, FaultVerdict, NumpyBackend,
                          ProcessPoolBackend, SerialBackend, VectorBackend,
                          cache_stats, clear_cache, default_stimulus,
                          get_cache, implementation_fingerprint,
                          program_signature, resolve_backend, run_campaign,
                          run_campaigns)
from repro.sim import have_numpy

CONFIG = CampaignConfig(num_faults=120, workload_cycles=6, seed=9)

needs_numpy = pytest.mark.skipif(not have_numpy(),
                                 reason="numpy not installed")

#: instances so the process backend actually forks even on a 1-CPU box
#: (min_tasks=0 defeats its small-campaign serial fallback — the pool
#: path itself is under test), and narrow vector/numpy backends so the
#: lane packer must produce several shards per campaign
BACKENDS_UNDER_TEST = [
    pytest.param(lambda: SerialBackend(), id="serial"),
    pytest.param(lambda: BatchBackend(), id="batch"),
    pytest.param(lambda: ProcessPoolBackend(processes=2, shard_size=16,
                                            min_tasks=0),
                 id="process"),
    pytest.param(lambda: VectorBackend(), id="vector"),
    pytest.param(lambda: VectorBackend(lane_width=8), id="vector-narrow"),
    pytest.param(lambda: NumpyBackend(), id="numpy", marks=needs_numpy),
    pytest.param(lambda: NumpyBackend(lane_width=8), id="numpy-narrow",
                 marks=needs_numpy),
]


@pytest.fixture(scope="module")
def implementation(tiny_fir_implementation):
    return tiny_fir_implementation


@pytest.fixture(scope="module")
def serial_reference(implementation):
    clear_cache()
    return run_campaign(implementation, CONFIG, use_cache=False)


class TestBackendEquivalence:
    @pytest.mark.parametrize("make_backend", BACKENDS_UNDER_TEST)
    def test_backends_bit_identical(self, implementation, serial_reference,
                                    make_backend):
        result = run_campaign(implementation, CONFIG,
                              backend=make_backend())
        reference = serial_reference
        assert result.injected == reference.injected
        assert result.fault_list_size == reference.fault_list_size
        assert result.wrong_answers == reference.wrong_answers
        assert result.wrong_answer_percent == reference.wrong_answer_percent
        assert result.effect_table() == reference.effect_table()
        assert {name: (count.injected, count.wrong)
                for name, count in result.by_category.items()} == \
            {name: (count.injected, count.wrong)
             for name, count in reference.by_category.items()}
        assert [r.bit for r in result.results] == \
            [r.bit for r in reference.results]
        assert [(r.category, r.has_effect, r.wrong_answer,
                 r.first_mismatch_cycle) for r in result.results] == \
            [(r.category, r.has_effect, r.wrong_answer,
              r.first_mismatch_cycle) for r in reference.results]

    @pytest.mark.parametrize("make_backend", BACKENDS_UNDER_TEST)
    def test_backend_name_recorded(self, implementation, make_backend):
        backend = make_backend()
        result = run_campaign(implementation, CONFIG, backend=backend)
        assert result.backend == backend.name

    def test_explicit_fault_bits_honoured(self, implementation):
        bits = run_campaign(implementation, CONFIG).results
        subset = [r.bit for r in bits[:20]]
        for backend in ("serial", "batch"):
            result = run_campaign(implementation, CONFIG, fault_bits=subset,
                                  backend=backend)
            assert [r.bit for r in result.results] == subset

    def test_progress_cadence_matches_seed(self, implementation):
        fault_list_bits = [r.bit for r in
                           run_campaign(implementation, CONFIG).results]
        bits = (fault_list_bits * 3)[:250]
        for backend in ("serial", "batch", "vector",
                        ProcessPoolBackend(processes=2, shard_size=32,
                                           min_tasks=0)):
            calls = []
            run_campaign(implementation, CONFIG, fault_bits=bits,
                         backend=backend,
                         progress=lambda done, total: calls.append(
                             (done, total)))
            assert calls == [(250, 250)]


class TestCache:
    def test_cached_rerun_identical_and_hits(self, implementation):
        clear_cache()
        cold = run_campaign(implementation, CONFIG)
        before = cache_stats()
        warm = run_campaign(implementation, CONFIG)
        after = cache_stats()
        assert warm.wrong_answer_percent == cold.wrong_answer_percent
        assert warm.effect_table() == cold.effect_table()
        assert after["golden_hits"] > before["golden_hits"]
        assert after["effect_hits"] >= before["effect_hits"] + CONFIG.num_faults
        assert after["fault_list_hits"] > before["fault_list_hits"]

    def test_cache_disabled_matches_cached(self, implementation):
        cached = run_campaign(implementation, CONFIG)
        uncached = run_campaign(implementation, CONFIG, use_cache=False)
        assert cached.wrong_answer_percent == uncached.wrong_answer_percent
        assert cached.effect_table() == uncached.effect_table()

    def test_fingerprint_stable_and_content_based(self, implementation):
        first = implementation_fingerprint(implementation)
        assert first == implementation_fingerprint(implementation)
        assert get_cache().fingerprint_of(implementation) == first

    def test_clear_cache_resets(self, implementation):
        run_campaign(implementation, CONFIG)
        assert len(get_cache()) >= 1
        clear_cache()
        assert len(get_cache()) == 0
        assert sum(cache_stats().values()) == 0


class TestEngineApi:
    def test_resolve_backend_forms(self):
        assert isinstance(resolve_backend(None), SerialBackend)
        assert isinstance(resolve_backend("serial"), SerialBackend)
        assert isinstance(resolve_backend("batch"), BatchBackend)
        assert isinstance(resolve_backend("process"), ProcessPoolBackend)
        assert isinstance(resolve_backend("processpool"), ProcessPoolBackend)
        assert isinstance(resolve_backend("vector"), VectorBackend)
        assert isinstance(resolve_backend("bitparallel"), VectorBackend)
        assert isinstance(resolve_backend("ppsfp"), VectorBackend)
        if have_numpy():
            assert isinstance(resolve_backend("numpy"), NumpyBackend)
            assert isinstance(resolve_backend("np"), NumpyBackend)
            assert isinstance(resolve_backend("compiled"), NumpyBackend)
        assert isinstance(resolve_backend(BatchBackend), BatchBackend)
        instance = ProcessPoolBackend(processes=3)
        assert resolve_backend(instance) is instance
        with pytest.raises(ValueError):
            resolve_backend("gpu")
        with pytest.raises(TypeError):
            resolve_backend(42)
        assert issubclass(SerialBackend, ExecutionBackend)

    def test_tasks_and_verdicts_picklable(self, implementation,
                                          serial_reference):
        from repro.faults import CampaignContext

        context = CampaignContext(
            implementation,
            stimulus=default_stimulus(implementation, CONFIG))
        bits = [r.bit for r in serial_reference.results[:5]]
        tasks = context.tasks_for(bits)
        for task in tasks:
            clone = pickle.loads(pickle.dumps(task))
            assert isinstance(clone, FaultTask)
            assert (clone.index, clone.bit) == (task.index, task.bit)
            verdict = context.evaluate(task)
            round_trip = pickle.loads(pickle.dumps(verdict))
            assert isinstance(round_trip, FaultVerdict)
            assert round_trip == verdict

    def test_detached_context_picklable_for_spawn(self, implementation):
        from repro.faults import CampaignContext

        entry = get_cache().entry_for(implementation)
        context = CampaignContext(
            implementation,
            stimulus=default_stimulus(implementation, CONFIG),
            cache_entry=entry)
        # The cache entry holds weak references and must not travel to
        # spawn-mode workers; the detached clone must round-trip and keep
        # evaluating identically.
        with pytest.raises(TypeError):
            pickle.dumps(entry)
        detached = context.detached()
        # Pickling the netlist graph recurses proportionally to its depth;
        # multiprocessing pickles from a shallow main-thread stack, but
        # pytest's own frames eat into the default limit, so restore the
        # headroom the real spawn path has.
        import sys

        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(limit, 10000))
        try:
            clone = pickle.loads(pickle.dumps(detached))
        finally:
            sys.setrecursionlimit(limit)
        bits = [r.bit for r in
                run_campaign(implementation, CONFIG).results[:3]]
        for bit in bits:
            task_local = context.tasks_for([bit])[0]
            task_clone = clone.tasks_for([bit])[0]
            assert clone.evaluate(task_clone) == context.evaluate(task_local)

    def test_mutated_bitstream_gets_fresh_cache_entry(self, implementation):
        entry = get_cache().entry_for(implementation)
        implementation.bitstream.flip_bit(0)
        try:
            assert get_cache().entry_for(implementation) is not entry
        finally:
            implementation.bitstream.flip_bit(0)
        assert get_cache().fingerprint_of(implementation) == \
            entry.fingerprint

    def test_program_signature_groups_by_program_change(self, implementation,
                                                        serial_reference):
        from repro.faults import CampaignContext

        context = CampaignContext(
            implementation,
            stimulus=default_stimulus(implementation, CONFIG))
        effects = [context.effect_of_bit(r.bit)
                   for r in serial_reference.results]
        signatures = [program_signature(e) for e in effects]
        # Effects without program-touching overrides share the empty
        # signature (they all reuse the golden program verbatim).
        empty = [s for e, s in zip(effects, signatures)
                 if not e.overlay.lut_init_overrides
                 and not e.overlay.gate_pin_overrides]
        assert empty and all(s == ((), ()) for s in empty)
        # A LUT INIT upset owns a non-empty signature.
        lut = next(e for e in effects if e.overlay.lut_init_overrides)
        assert program_signature(lut) != ((), ())

    def test_run_campaigns_backend_knob(self, implementation):
        results = run_campaigns({"only": implementation}, CONFIG,
                                backend="batch")
        assert results["only"].backend == "batch"

    def test_campaign_tradeoff_runs_through_engine(self, implementation):
        from repro.analysis import campaign_tradeoff

        points = campaign_tradeoff({"standard": implementation}, CONFIG,
                                   backend="batch")
        assert len(points) == 1
        assert points[0].design == "standard"
        assert points[0].wrong_answer_percent > 0


class TestVectorLaneEquivalence:
    """Property: VectorBackend is a bit-identical drop-in for SerialBackend.

    Randomized campaigns (different sampling seeds, workload streams and
    lane widths, on both the plain and the TMR filter) must demux the
    packed lanes into exactly the verdict stream the scalar cone
    simulator produces — including the first mismatching cycle.
    """

    @staticmethod
    def _verdict_stream(result):
        return [(r.bit, r.category, r.has_effect, r.wrong_answer,
                 r.first_mismatch_cycle) for r in result.results]

    @pytest.mark.parametrize("case", range(4))
    def test_randomized_campaigns_bit_identical(self, implementation,
                                               tiny_tmr_implementation,
                                               case):
        rng = random.Random(1000 + case)
        target = implementation if case % 2 == 0 else \
            tiny_tmr_implementation
        config = CampaignConfig(
            num_faults=rng.randint(40, 90),
            workload_cycles=rng.randint(4, 8),
            seed=rng.randint(0, 10_000),
            workload_seed=rng.randint(0, 10_000),
            skip_cycles=rng.choice((0, 1)),
        )
        serial = run_campaign(target, config, backend="serial")
        vector = run_campaign(
            target, config,
            backend=VectorBackend(lane_width=rng.choice((4, 32, 256))))
        assert self._verdict_stream(vector) == self._verdict_stream(serial)
        assert vector.wrong_answers == serial.wrong_answers
        assert vector.effect_table() == serial.effect_table()

    def test_explicit_lane_packing_covers_every_fault(self, implementation,
                                                      serial_reference):
        # A lane width of one degenerates to per-fault sweeps and must
        # still agree — exercises single-lane masks and shard demux.
        bits = [r.bit for r in serial_reference.results[:25]]
        serial = run_campaign(implementation, CONFIG, fault_bits=bits,
                              backend="serial")
        backend = VectorBackend(lane_width=1)
        vector = run_campaign(implementation, CONFIG, fault_bits=bits,
                              backend=backend)
        assert self._verdict_stream(vector) == self._verdict_stream(serial)
        assert backend.last_run_stats["packed_faults"] == sum(
            1 for r in serial.results if r.has_effect)
        assert backend.last_run_stats["peak_lane_utilization"] == 1.0

    def test_vector_program_cached_across_campaigns(self, implementation):
        clear_cache()
        run_campaign(implementation, CONFIG, backend="vector")
        first = cache_stats()
        assert first["vector_program_misses"] >= 1
        run_campaign(implementation, CONFIG, backend="vector")
        second = cache_stats()
        assert second["vector_program_hits"] > first["vector_program_hits"]
        assert second["vector_program_misses"] == \
            first["vector_program_misses"]


class TestDefaultStimulus:
    def test_plain_design_uses_sorted_first_port(self, implementation):
        stimulus = default_stimulus(implementation, CONFIG)
        assert len(stimulus) == CONFIG.workload_cycles
        ports = implementation.design.ports
        data_ports = sorted(
            name for name in ports
            if ports[name].direction.value == "input"
            and not name.upper().startswith("CLK"))
        assert set(stimulus[0]) == {data_ports[0]}
        assert stimulus == default_stimulus(implementation, CONFIG)

    def test_tmr_design_drives_all_domains(self, tiny_tmr_implementation):
        stimulus = default_stimulus(tiny_tmr_implementation, CONFIG)
        assert len(stimulus) == CONFIG.workload_cycles
        base = sorted(stimulus[0])
        assert any(name.endswith("_tr0") for name in base)
        for cycle in stimulus:
            values = {}
            for name, value in cycle.items():
                assert name[-4:-1] == "_tr"
                values.setdefault(name[:-4], set()).add(value)
            for domain_values in values.values():
                assert len(domain_values) == 1


class TestProcessPoolFallback:
    def test_small_campaign_falls_back_to_serial(self, implementation,
                                                 serial_reference, caplog):
        import logging

        backend = ProcessPoolBackend(processes=2)
        assert CONFIG.num_faults < backend.min_tasks
        with caplog.at_level(logging.INFO, logger="repro.faults.engine"):
            result = run_campaign(implementation, CONFIG, backend=backend)
        # The fallback is visible in the report and in the log, and the
        # verdicts are the serial ones.
        assert backend.name == "process:serial-fallback"
        assert result.backend == "process:serial-fallback"
        assert any("cut-over" in record.message for record in caplog.records)
        assert result.wrong_answers == serial_reference.wrong_answers
        assert result.effect_table() == serial_reference.effect_table()

    def test_threshold_zero_forces_the_pool(self, implementation):
        backend = ProcessPoolBackend(processes=2, min_tasks=0)
        result = run_campaign(implementation, CONFIG, backend=backend)
        assert backend.name == "process"
        assert result.backend == "process"

    def test_pool_name_restored_after_fallback(self, implementation):
        backend = ProcessPoolBackend(processes=2, min_tasks=0)
        small = ProcessPoolBackend(processes=2)
        run_campaign(implementation, CONFIG, backend=small)
        assert small.name == "process:serial-fallback"
        run_campaign(implementation, CONFIG, backend=backend)
        assert backend.name == "process"
