"""Stimulus generation for simulation and fault-injection campaigns."""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence


def signed_range(width: int) -> range:
    """The representable signed range of a *width*-bit two's-complement bus."""
    return range(-(1 << (width - 1)), 1 << (width - 1))


def random_samples(count: int, width: int, seed: int = 2005) -> List[int]:
    """Deterministic pseudo-random signed samples (seeded for repeatability).

    The default seed is the paper's publication year so that every campaign
    in the repository applies the identical input stream.
    """
    generator = random.Random(seed)
    low = -(1 << (width - 1))
    high = (1 << (width - 1)) - 1
    return [generator.randint(low, high) for _ in range(count)]


def impulse(count: int, width: int, amplitude: Optional[int] = None,
            position: int = 0) -> List[int]:
    """An impulse stream: zero everywhere except one maximal sample."""
    if amplitude is None:
        amplitude = (1 << (width - 1)) - 1
    samples = [0] * count
    if 0 <= position < count:
        samples[position] = amplitude
    return samples


def step(count: int, width: int, amplitude: Optional[int] = None,
         position: int = 0) -> List[int]:
    """A step stream: zero before *position*, *amplitude* afterwards."""
    if amplitude is None:
        amplitude = (1 << (width - 1)) - 1
    return [0 if cycle < position else amplitude for cycle in range(count)]


def alternating(count: int, width: int) -> List[int]:
    """Alternate between the maximum and minimum representable values.

    This exercises every data bit and both carry directions of the adders,
    which is what makes a short fault-injection workload still observant.
    """
    high = (1 << (width - 1)) - 1
    low = -(1 << (width - 1))
    return [high if cycle % 2 == 0 else low for cycle in range(count)]


def stimulus_from_samples(samples: Sequence[int], port: str = "DIN",
                          extra: Optional[Dict[str, int]] = None,
                          ) -> List[Dict[str, int]]:
    """Wrap a sample stream into per-cycle input dictionaries."""
    base = dict(extra) if extra else {}
    return [{**base, port: sample} for sample in samples]


def tmr_stimulus_from_samples(samples: Sequence[int], port: str = "DIN",
                              domains: int = 3,
                              extra: Optional[Dict[str, int]] = None,
                              ) -> List[Dict[str, int]]:
    """Per-cycle inputs for a TMR design with triplicated input ports.

    The same sample is applied to ``{port}_tr0 .. {port}_tr{domains-1}``,
    reflecting that the three redundant domains receive copies of the same
    external signal through their own package pins.
    """
    base = dict(extra) if extra else {}
    cycles = []
    for sample in samples:
        entry = dict(base)
        for domain in range(domains):
            entry[f"{port}_tr{domain}"] = sample
        cycles.append(entry)
    return cycles


def campaign_workload(width: int, cycles: int = 12, seed: int = 2005,
                      ) -> List[int]:
    """The default fault-injection workload: impulse, then random samples.

    The first sample is a full-scale impulse (propagates through every tap),
    followed by seeded random data.  *cycles* counts total samples.
    """
    if cycles < 1:
        raise ValueError("workload needs at least one cycle")
    samples = [(1 << (width - 1)) - 1]
    samples.extend(random_samples(cycles - 1, width, seed))
    return samples
